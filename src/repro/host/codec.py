"""Compressed columnar trace codec (the ``v2`` on-disk trace format).

The disk cache used to persist every trace as an *uncompressed*
``.npz`` — 35 bytes per instruction, deserialized in full by every
reader. This module replaces that with a frame-structured columnar
encoding that exploits how trace columns actually behave:

``pc`` / ``addr`` / ``origin`` (int64)
    delta + zigzag + varint (``dzv``): consecutive program counters
    and effective addresses are near each other, so deltas are small
    and most values take 1-2 bytes instead of 8.
``size`` / ``dep`` (int32)
    zigzag + varint (``zv``): access sizes and dependence distances
    are tiny non-negative integers — almost always one byte.
``kind`` / ``category`` / ``flags`` (int8)
    raw ``uint8`` (``u8``): already minimal, stored as-is so a single
    column (e.g. ``category`` for a breakdown) can be sliced without
    any arithmetic.

Rows are grouped into **frames** (:data:`FRAME_ROWS` rows each); every
frame encodes its columns independently (delta chains restart per
frame) and a JSON directory at the end of the file records each
column segment's byte range. A reader therefore memory-maps the file
and decodes *only the frames and columns a consumer touches* — a
warm query that needs two columns of a window pays for exactly those
segments, never a full-file decode, and the OS page cache shares the
mapped bytes between every process on the host.

File layout::

    [0:24)    header: b"RPTC", u32 version=2, u64 meta_off, u64 meta_len
    [24:...)  frame segments, frame-major then column-major
    [meta_off:meta_off+meta_len)  JSON meta + frame directory

Durability follows the disk cache's commit protocol (the encoder
writes to a temp name, the cache renames and records a SHA-256), so a
truncated or bit-flipped file is either caught by the checksum on
load or rejected here with a typed :class:`~repro.errors.TraceError`
(varint streams validate their value count, byte count, and length
bounds; the directory validates segment ranges).

The varint hot loop optionally dispatches to a compiled C kernel
(:mod:`repro.host._codec_kernel`, ``REPRO_CODEC_KERNEL=off`` to
disable); the pure-NumPy reference here is bit-identical — LEB128 is
canonical, one encoding per value.

``REPRO_TRACE_CODEC`` selects the *write* format: ``auto`` (default)
and ``v2`` write this format, ``npz`` keeps writing the legacy
readable NumPy archive. Readers always sniff magic bytes, so mixed
caches read transparently regardless of the switch.
"""

from __future__ import annotations

import json
import os
import struct
import time
from pathlib import Path

import numpy as np

from ..errors import ConfigError, TraceError
from . import _codec_kernel

#: Canonical trace column order and dtypes. ``repro.host.trace`` keeps
#: the matching ``array`` typecodes; the two are cross-checked there.
COLUMNS = ("pc", "kind", "category", "addr", "size", "dep", "flags",
           "origin")
DTYPES = tuple(np.dtype(name) for name in
               ("int64", "int8", "int8", "int64", "int32", "int32",
                "int8", "int64"))

#: Bytes one row occupies in canonical (decoded) column form.
RAW_ROW_BYTES = sum(dtype.itemsize for dtype in DTYPES)

#: Rows per frame. 64K rows keeps a full-frame decode comfortably in
#: L2-resident working sets while bounding the cost of a one-row
#: ``slice_view`` on a 100M-row trace to a single frame.
FRAME_ROWS = 1 << 16

MAGIC = b"RPTC"
VERSION = 2
_HEADER = struct.Struct("<4sIQQ")

CODEC_ENV = "REPRO_TRACE_CODEC"
_CODEC_CHOICES = ("auto", "v2", "npz")

#: Encoding id per column, fixed by dtype (see module docstring).
_ENCODINGS = {np.dtype("int64"): "dzv", np.dtype("int32"): "zv",
              np.dtype("int8"): "u8"}

_U0 = np.uint64(0)
_U1 = np.uint64(1)
_U7 = np.uint64(7)
_U63 = np.uint64(63)
_U7F = np.uint64(0x7F)


def trace_codec() -> str:
    """Resolve ``REPRO_TRACE_CODEC`` to a write format: ``v2``/``npz``."""
    raw = os.environ.get(CODEC_ENV, "auto").strip().lower() or "auto"
    if raw not in _CODEC_CHOICES:
        raise ConfigError(
            f"{CODEC_ENV} must be one of {_CODEC_CHOICES}, got {raw!r}")
    return "npz" if raw == "npz" else "v2"


def sniff(path: str | Path) -> str | None:
    """Identify a trace file by magic: ``"v2"``, ``"npz"``, or None."""
    try:
        with open(path, "rb") as handle:
            head = handle.read(4)
    except OSError:
        return None
    if head == MAGIC:
        return "v2"
    if head[:2] == b"PK":  # npz archives are zip files
        return "npz"
    return None


# ----------------------------------------------------------------------
# Varint / zigzag / delta primitives (NumPy reference + kernel dispatch)
# ----------------------------------------------------------------------


def _zigzag(u: np.ndarray) -> np.ndarray:
    """Zigzag-map a uint64 view of signed values (small magnitudes of
    either sign become small unsigned values)."""
    return (u << _U1) ^ (_U0 - (u >> _U63))


def _unzigzag(z: np.ndarray) -> np.ndarray:
    return (z >> _U1) ^ (_U0 - (z & _U1))


def _varint_encode_numpy(u: np.ndarray) -> np.ndarray:
    n = u.size
    if n == 0:
        return np.zeros(0, dtype=np.uint8)
    lengths = np.ones(n, dtype=np.int64)
    for k in range(1, 10):
        lengths += u >= np.uint64(1 << (7 * k))
    starts = np.zeros(n, dtype=np.int64)
    np.cumsum(lengths[:-1], out=starts[1:])
    out = np.zeros(int(lengths.sum()), dtype=np.uint8)
    shifted = u.copy()
    for k in range(10):
        active = np.flatnonzero(lengths > k)
        if active.size == 0:
            break
        byte = (shifted[active] & _U7F).astype(np.uint8)
        cont = (lengths[active] > k + 1).astype(np.uint8)
        out[starts[active] + k] = byte | (cont << 7)
        shifted >>= _U7
    return out


def _varint_decode_numpy(buf: np.ndarray, count: int) -> np.ndarray:
    terminals = np.flatnonzero((buf & 0x80) == 0)
    if terminals.size != count:
        raise TraceError(
            f"varint stream holds {terminals.size} values, "
            f"expected {count} (truncated or corrupt frame)")
    if count == 0:
        if buf.size:
            raise TraceError("varint stream has trailing bytes")
        return np.zeros(0, dtype=np.uint64)
    if int(terminals[-1]) != buf.size - 1:
        raise TraceError("varint stream has trailing bytes")
    starts = np.empty(count, dtype=np.int64)
    starts[0] = 0
    starts[1:] = terminals[:-1] + 1
    lengths = terminals - starts + 1
    max_len = int(lengths.max())
    if max_len > 10:
        raise TraceError(
            f"varint value spans {max_len} bytes (not a 64-bit varint)")
    out = np.zeros(count, dtype=np.uint64)
    for k in range(max_len):
        active = np.flatnonzero(lengths > k)
        byte = buf[starts[active] + k].astype(np.uint64)
        out[active] |= (byte & _U7F) << np.uint64(7 * k)
    return out


def _varint_encode(u: np.ndarray) -> np.ndarray:
    kernel = _codec_kernel.get_kernel()
    if kernel is None or u.size == 0:
        return _varint_encode_numpy(u)
    out = np.empty(u.size * 10, dtype=np.uint8)
    written = kernel.encode(np.ascontiguousarray(u), out)
    return out[:written].copy()


def _varint_decode(buf: np.ndarray, count: int) -> np.ndarray:
    kernel = _codec_kernel.get_kernel()
    if kernel is None:
        return _varint_decode_numpy(buf, count)
    out = np.empty(count, dtype=np.uint64)
    consumed = kernel.decode(np.ascontiguousarray(buf), out)
    if consumed != buf.size:
        raise TraceError(
            "varint stream is truncated, overlong, or has trailing "
            f"bytes ({consumed} of {buf.size} bytes consumed for "
            f"{count} values)")
    return out


# ----------------------------------------------------------------------
# Column segment encode / decode
# ----------------------------------------------------------------------


def _encode_column(values: np.ndarray, dtype: np.dtype) -> bytes:
    encoding = _ENCODINGS[dtype]
    if encoding == "u8":
        return np.ascontiguousarray(values, dtype=np.int8) \
            .view(np.uint8).tobytes()
    u = np.ascontiguousarray(values, dtype=np.int64).view(np.uint64)
    if encoding == "dzv" and u.size:
        deltas = u.copy()
        deltas[1:] = u[1:] - u[:-1]  # mod-2^64: exact inverse of cumsum
        u = deltas
    return _varint_encode(_zigzag(u)).tobytes()


def _decode_column(seg: np.ndarray, rows: int, dtype: np.dtype,
                   ) -> np.ndarray:
    encoding = _ENCODINGS[dtype]
    if encoding == "u8":
        if seg.size != rows:
            raise TraceError(
                f"u8 segment holds {seg.size} rows, expected {rows}")
        return seg.astype(np.uint8).view(np.int8)
    signed = _unzigzag(_varint_decode(seg, rows))
    if encoding == "dzv":
        signed = np.cumsum(signed, dtype=np.uint64)
    return signed.view(np.int64).astype(dtype, copy=False)


# ----------------------------------------------------------------------
# File writer
# ----------------------------------------------------------------------


def encode_file(path: str | Path, block_fn, rows: int,
                frame_rows: int = FRAME_ROWS) -> int:
    """Write a v2 trace file; returns the encoded byte count.

    ``block_fn(start, stop)`` must return a dict of the canonical
    columns for rows ``[start, stop)`` — the encoder pulls one frame
    at a time, so a spilled (memmap-backed) trace streams through
    without ever materializing its full canonical columns.
    """
    if frame_rows < 1:
        raise TraceError(f"frame_rows must be >= 1, got {frame_rows}")
    t0 = time.perf_counter()
    frames = []
    with open(path, "wb") as handle:
        handle.write(_HEADER.pack(MAGIC, VERSION, 0, 0))
        offset = _HEADER.size
        for start in range(0, rows, frame_rows):
            stop = min(start + frame_rows, rows)
            block = block_fn(start, stop)
            segments = {}
            for name, dtype in zip(COLUMNS, DTYPES):
                column = block[name]
                if len(column) != stop - start:
                    raise TraceError(
                        f"block [{start}, {stop}) returned "
                        f"{len(column)} rows for column {name!r}")
                payload = _encode_column(column, dtype)
                handle.write(payload)
                segments[name] = [offset, len(payload)]
                offset += len(payload)
            frames.append({"rows": stop - start, "segments": segments})
        meta = {
            "rows": rows,
            "frame_rows": frame_rows,
            "columns": list(COLUMNS),
            "dtypes": [dtype.name for dtype in DTYPES],
            "frames": frames,
        }
        blob = json.dumps(meta, separators=(",", ":")).encode("utf-8")
        handle.write(blob)
        total = offset + len(blob)
        handle.seek(0)
        handle.write(_HEADER.pack(MAGIC, VERSION, offset, len(blob)))
    elapsed = time.perf_counter() - t0
    if elapsed > 0 and rows:
        from ..telemetry import TELEMETRY
        TELEMETRY.metrics.gauge("trace.codec.bytes_per_second",
                                op="encode").set(
            rows * RAW_ROW_BYTES / elapsed)
    return total


def encode_arrays(path: str | Path, arrays: dict,
                  frame_rows: int = FRAME_ROWS) -> int:
    """Encode fully materialized columns (test/tool convenience)."""
    missing = [name for name in COLUMNS if name not in arrays]
    if missing:
        raise TraceError(f"trace columns missing: {missing}")
    rows = len(arrays[COLUMNS[0]])

    def block(start: int, stop: int) -> dict:
        return {name: arrays[name][start:stop] for name in COLUMNS}

    return encode_file(path, block, rows, frame_rows=frame_rows)


# ----------------------------------------------------------------------
# Reader: mmap + per-frame, per-column lazy decode
# ----------------------------------------------------------------------


class FrameReader:
    """Zero-copy view of one encoded trace file.

    The file is memory-mapped once; every decode touches only the
    byte ranges of the requested frames and columns. Any structural
    problem — bad magic, malformed directory, out-of-range segment,
    truncated varint stream — raises :class:`TraceError` carrying the
    path, and fires ``on_corrupt`` once so the owning cache can
    quarantine the entry before a retry.
    """

    def __init__(self, path: str | Path, on_corrupt=None) -> None:
        self.path = Path(path)
        self._on_corrupt = on_corrupt
        self._corrupt_reported = False
        self._mm: np.ndarray | None = None
        try:
            size = self.path.stat().st_size
            with open(self.path, "rb") as handle:
                header = handle.read(_HEADER.size)
                if len(header) < _HEADER.size:
                    raise TraceError(
                        f"trace file too short for a header: {self.path}")
                magic, version, meta_off, meta_len = _HEADER.unpack(header)
                if magic != MAGIC:
                    raise TraceError(
                        f"not a v2 trace file (bad magic): {self.path}")
                if version != VERSION:
                    raise TraceError(
                        f"unsupported trace format version {version} "
                        f"in {self.path}")
                if meta_off < _HEADER.size \
                        or meta_off + meta_len > size:
                    raise TraceError(
                        f"trace directory out of range in {self.path}")
                handle.seek(meta_off)
                blob = handle.read(meta_len)
            meta = json.loads(blob.decode("utf-8"))
        except TraceError:
            self._report_corrupt()
            raise
        except (OSError, ValueError, UnicodeDecodeError, struct.error) \
                as exc:
            self._report_corrupt()
            raise TraceError(
                f"unreadable v2 trace file {self.path}: {exc!r}") from exc
        self._payload_end = meta_off
        self._validate_meta(meta)

    def _validate_meta(self, meta: dict) -> None:
        try:
            columns = tuple(meta["columns"])
            dtypes = tuple(meta["dtypes"])
            rows = int(meta["rows"])
            frame_rows = int(meta["frame_rows"])
            frames = list(meta["frames"])
        except (KeyError, TypeError, ValueError) as exc:
            self._report_corrupt()
            raise TraceError(
                f"malformed trace directory in {self.path}: "
                f"{exc!r}") from exc
        missing = [name for name in COLUMNS if name not in columns]
        extra = [name for name in columns if name not in COLUMNS]
        if missing or extra:
            self._report_corrupt()
            raise TraceError(
                f"trace file {self.path} has wrong column set: "
                f"missing {missing}, unexpected {extra}")
        if dtypes != tuple(dtype.name for dtype in DTYPES):
            self._report_corrupt()
            raise TraceError(
                f"trace file {self.path} has wrong column dtypes: "
                f"{dtypes}")
        if rows < 0 or frame_rows < 1:
            self._report_corrupt()
            raise TraceError(
                f"trace file {self.path} declares invalid shape "
                f"(rows={rows}, frame_rows={frame_rows})")
        covered = 0
        for frame in frames:
            try:
                frame_count = int(frame["rows"])
                segments = frame["segments"]
                spans = [(int(segments[name][0]), int(segments[name][1]))
                         for name in COLUMNS]
            except (KeyError, TypeError, ValueError, IndexError) as exc:
                self._report_corrupt()
                raise TraceError(
                    f"malformed frame directory in {self.path}: "
                    f"{exc!r}") from exc
            for off, length in spans:
                if off < _HEADER.size or length < 0 \
                        or off + length > self._payload_end:
                    self._report_corrupt()
                    raise TraceError(
                        f"frame segment [{off}, {off + length}) out of "
                        f"range in {self.path}")
            covered += frame_count
        if covered != rows:
            self._report_corrupt()
            raise TraceError(
                f"frame directory covers {covered} rows, file declares "
                f"{rows}: {self.path}")
        self.rows = rows
        self.frame_rows = frame_rows
        self._frames = frames

    # -- raw access ----------------------------------------------------

    def _data(self) -> np.ndarray:
        if self._mm is None:
            self._mm = np.memmap(self.path, dtype=np.uint8, mode="r")
        return self._mm

    def _report_corrupt(self) -> None:
        if self._corrupt_reported:
            return
        self._corrupt_reported = True
        if self._on_corrupt is not None:
            try:
                self._on_corrupt()
            except Exception:  # pragma: no cover - callback safety net
                pass

    def _frame_column(self, index: int, name: str) -> np.ndarray:
        frame = self._frames[index]
        offset, length = frame["segments"][name]
        seg = self._data()[offset:offset + length]
        dtype = DTYPES[COLUMNS.index(name)]
        try:
            return _decode_column(seg, frame["rows"], dtype)
        except TraceError as exc:
            self._report_corrupt()
            raise TraceError(
                f"corrupt column {name!r} in frame {index} of "
                f"{self.path}: {exc}") from exc

    # -- decoded views -------------------------------------------------

    def column(self, name: str) -> np.ndarray:
        """Decode one full column (all frames, nothing else)."""
        dtype = DTYPES[COLUMNS.index(name)]
        if not self._frames:
            return np.zeros(0, dtype=dtype)
        t0 = time.perf_counter()
        parts = [self._frame_column(i, name)
                 for i in range(len(self._frames))]
        column = parts[0] if len(parts) == 1 else np.concatenate(parts)
        self._note_decode(column.nbytes, time.perf_counter() - t0)
        return column

    def decode_range(self, start: int, stop: int) -> dict:
        """Decode all columns of rows ``[start, stop)`` — touching only
        the frames that cover the range."""
        if not (0 <= start <= stop <= self.rows):
            raise TraceError(
                f"slice [{start}, {stop}) out of range for trace of "
                f"length {self.rows}")
        out = {name: [] for name in COLUMNS}
        t0 = time.perf_counter()
        frame_start = 0
        for index, frame in enumerate(self._frames):
            frame_stop = frame_start + frame["rows"]
            if frame_stop > start and frame_start < stop:
                lo = max(start - frame_start, 0)
                hi = min(stop - frame_start, frame["rows"])
                for name in COLUMNS:
                    out[name].append(
                        self._frame_column(index, name)[lo:hi])
            frame_start = frame_stop
            if frame_start >= stop:
                break
        arrays = {}
        for name, dtype in zip(COLUMNS, DTYPES):
            parts = out[name]
            if not parts:
                arrays[name] = np.zeros(0, dtype=dtype)
            elif len(parts) == 1:
                arrays[name] = parts[0]
            else:
                arrays[name] = np.concatenate(parts)
        self._note_decode(sum(a.nbytes for a in arrays.values()),
                          time.perf_counter() - t0)
        return arrays

    @staticmethod
    def _note_decode(nbytes: int, elapsed: float) -> None:
        if elapsed <= 0 or not nbytes:
            return
        from ..telemetry import TELEMETRY
        TELEMETRY.metrics.gauge("trace.codec.bytes_per_second",
                                op="decode").set(nbytes / elapsed)

    def close(self) -> None:
        self._mm = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"FrameReader({self.path}, rows={self.rows}, "
                f"frames={len(self._frames)})")
