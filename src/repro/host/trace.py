"""Columnar instruction traces.

A trace is the interface between the run-time models (producers) and the
microarchitecture models (consumers). Columns are appended as flat Python
``array`` buffers for speed and exposed to consumers as numpy arrays.

Columns
-------
pc        static program counter of the host instruction
kind      :class:`~repro.host.isa.InstrKind` value
category  :class:`~repro.categories.OverheadCategory` value
addr      effective address (memory ops) or branch target (control ops)
size      access size in bytes (memory ops only)
dep       distance, in instructions, back to the producer this instruction
          depends on (0 = no register dependence)
flags     FLAG_TAKEN / FLAG_INDIRECT / FLAG_COND bits
origin    origin PC for caller-dependent annotation (Section IV-B.1)
"""

from __future__ import annotations

from array import array
from pathlib import Path

import numpy as np

from ..errors import TraceError

_COLUMNS = ("pc", "kind", "category", "addr", "size", "dep", "flags",
            "origin")


class InstructionTrace:
    """Append-only columnar buffer of host instructions."""

    def __init__(self) -> None:
        self.pc = array("q")
        self.kind = array("b")
        self.category = array("b")
        self.addr = array("q")
        self.size = array("i")
        self.dep = array("i")
        self.flags = array("b")
        self.origin = array("q")
        self._frozen: dict[str, np.ndarray] | None = None
        self._frozen_len = -1

    def __len__(self) -> int:
        return len(self.pc)

    def append(self, pc: int, kind: int, category: int, addr: int = 0,
               size: int = 0, dep: int = 1, flags: int = 0,
               origin: int = 0) -> None:
        """Append one instruction. Hot path: keep argument handling flat."""
        self.pc.append(pc)
        self.kind.append(kind)
        self.category.append(category)
        self.addr.append(addr)
        self.size.append(size)
        self.dep.append(dep)
        self.flags.append(flags)
        self.origin.append(origin)

    def arrays(self) -> dict[str, np.ndarray]:
        """Return the trace as read-only numpy arrays (cached by length).

        Producers (:class:`~repro.host.machine.HostMachine`) append to the
        column buffers directly for speed, so the cache is keyed on trace
        length rather than invalidated on every append.
        """
        if self._frozen is None or self._frozen_len != len(self):
            self._frozen_len = len(self)
            # Copy rather than view: a numpy view would pin the array
            # buffers and make further appends raise BufferError.
            self._frozen = {
                name: np.array(getattr(self, name),
                               dtype=getattr(self, name).typecode)
                for name in _COLUMNS
            }
        return self._frozen

    def column(self, name: str) -> np.ndarray:
        if name not in _COLUMNS:
            raise TraceError(f"unknown trace column: {name!r}")
        return self.arrays()[name]

    def category_counts(self) -> np.ndarray:
        """Instruction count per category value (index = category)."""
        if len(self) == 0:
            return np.zeros(32, dtype=np.int64)
        return np.bincount(self.column("category"), minlength=32)

    def save(self, path: str | Path, compressed: bool = True) -> None:
        """Persist the trace to an ``.npz`` file.

        ``compressed=False`` trades disk for speed — the disk cache uses
        it because traces are written once and re-read many times, and
        deflate dominates the store cost on multi-megabyte traces.
        """
        saver = np.savez_compressed if compressed else np.savez
        with open(path, "wb") as handle:
            saver(handle, **self.arrays())

    @classmethod
    def load(cls, path: str | Path) -> "InstructionTrace":
        """Load a trace previously stored with :meth:`save`."""
        data = np.load(Path(path))
        missing = [name for name in _COLUMNS if name not in data]
        if missing:
            raise TraceError(f"trace file missing columns: {missing}")
        trace = cls()
        for name in _COLUMNS:
            column = getattr(trace, name)
            column.frombytes(
                np.ascontiguousarray(
                    data[name].astype(column.typecode)).tobytes())
        return trace

    def slice_view(self, start: int, stop: int) -> dict[str, np.ndarray]:
        """Read-only view of rows ``[start, stop)`` as numpy arrays."""
        if not (0 <= start <= stop <= len(self)):
            raise TraceError(
                f"slice [{start}, {stop}) out of range for trace of "
                f"length {len(self)}")
        return {name: arr[start:stop] for name, arr in self.arrays().items()}
