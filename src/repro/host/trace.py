"""Columnar instruction traces.

A trace is the interface between the run-time models (producers) and the
microarchitecture models (consumers). Committed rows live in one
preallocated row-major NumPy buffer (``int64``, shape ``(capacity, 8)``)
that grows by doubling behind an explicit cursor; two *staging* paths
feed it:

* the scalar append path — eight flat ``array`` columns the
  :class:`~repro.host.machine.HostMachine` appends to directly, drained
  into the buffer in bulk; and
* the burst path — a deferred emission queue owned by
  :class:`~repro.host.burst.BurstEngine`, registered here as a *flusher*
  so length queries and readers always see a consistent trace.

Traces past the ``REPRO_TRACE_SPILL_MB`` threshold migrate the buffer to
a memory-mapped file under the disk cache's ``spill/`` directory, so
10–100M-instruction traces stream through the page cache instead of
living wholly in RAM. Consumers then receive ``int64`` memmap-backed
column views; :meth:`InstructionTrace.save` always casts back to the
canonical column dtypes, so persisted bytes are identical with spill on
or off.

Columns
-------
pc        static program counter of the host instruction
kind      :class:`~repro.host.isa.InstrKind` value
category  :class:`~repro.categories.OverheadCategory` value
addr      effective address (memory ops) or branch target (control ops)
size      access size in bytes (memory ops only)
dep       distance, in instructions, back to the producer this instruction
          depends on (0 = no register dependence)
flags     FLAG_TAKEN / FLAG_INDIRECT / FLAG_COND bits
origin    origin PC for caller-dependent annotation (Section IV-B.1)
"""

from __future__ import annotations

import os
from array import array
from pathlib import Path

import numpy as np

from ..errors import TraceError
from . import codec as _codec

_COLUMNS = ("pc", "kind", "category", "addr", "size", "dep", "flags",
            "origin")

#: Canonical on-disk / consumer-facing dtype per column (matches the
#: ``array`` typecodes the original implementation used).
_TYPECODES = ("q", "b", "b", "q", "i", "i", "b", "q")
_DTYPES = tuple(np.dtype(code) for code in _TYPECODES)

# The codec owns the persisted format; the column schemas must agree.
assert _COLUMNS == _codec.COLUMNS and _DTYPES == _codec.DTYPES

#: Initial committed-buffer capacity in rows. 128K rows (8 MB) covers
#: small-to-medium traces outright, so most runs never pay a growth
#: copy; larger traces grow geometrically from here.
_INITIAL_ROWS = 1 << 17

#: Drain the scalar staging columns into the buffer past this many rows.
_STAGE_DRAIN_ROWS = 1 << 15

SPILL_ENV = "REPRO_TRACE_SPILL_MB"

_ROW_BYTES = 8 * 8  # eight int64 cells per row

_spill_seq = 0


def _spill_threshold_bytes() -> int | None:
    """Spill threshold from ``REPRO_TRACE_SPILL_MB`` (None = disabled)."""
    raw = os.environ.get(SPILL_ENV, "").strip()
    if not raw:
        return None
    try:
        mb = float(raw)
    except ValueError:
        return None
    if mb <= 0:
        return None
    return int(mb * 1024 * 1024)


def _spill_directory() -> Path | None:
    """The disk cache's ``spill/`` dir, or None when caching is off.

    Imported lazily: the host layer must stay importable without the
    experiments package, and spill is pointless without a cache root to
    govern the files (``repro cache gc`` evicts orphans).
    """
    try:
        from ..experiments.diskcache import DiskCache
    except ImportError:  # pragma: no cover - packaging safety net
        return None
    root = DiskCache().root
    if root is None:
        return None
    return Path(root) / "spill"


class InstructionTrace:
    """Append-only columnar buffer of host instructions."""

    def __init__(self) -> None:
        self._buf = np.zeros((_INITIAL_ROWS, 8), dtype=np.int64)
        self._n = 0  # committed rows in self._buf
        # Scalar staging columns: the machine's emit helpers bind and
        # append to these directly (array.append is far cheaper than a
        # per-row numpy assignment); they are drained in bulk.
        self._stage = tuple(array(code) for code in _TYPECODES)
        #: Optional deferred-emission queue (burst engine). Must expose
        #: ``pending_rows`` and ``flush()``.
        self._flusher = None
        self._sealed = False
        self._spill_bytes = _spill_threshold_bytes()
        self._spill_path: Path | None = None
        self._frozen: dict[str, np.ndarray] | None = None
        self._frozen_len = -1
        #: Lazy v2 reader backing this trace (see :meth:`_from_reader`).
        self._reader: _codec.FrameReader | None = None
        self._col_cache: dict[str, np.ndarray] = {}
        #: On-disk file known to hold exactly this trace's bytes; when
        #: live, pickling ships the path instead of the arrays.
        self._ref_path: Path | None = None
        self._ref_rows = -1

    # ------------------------------------------------------------------
    # Length and synchronization
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        if self._reader is not None:
            return self._reader.rows
        n = self._n + len(self._stage[0])
        flusher = self._flusher
        if flusher is not None:
            n += flusher.pending_rows
        return n

    def _sync(self) -> None:
        """Drain staging and the burst queue into the committed buffer."""
        flusher = self._flusher
        if flusher is not None and flusher.pending_rows:
            flusher.flush()
        if len(self._stage[0]):
            self._drain_stage()

    def _drain_stage(self) -> None:
        stage = self._stage
        k = len(stage[0])
        if not k:
            return
        if self._sealed:
            raise TraceError("trace is frozen; late appends are invalid")
        start = self.alloc_rows(k)
        buf = self._buf
        for j, (column, dtype) in enumerate(zip(stage, _DTYPES)):
            buf[start:start + k, j] = np.frombuffer(column, dtype=dtype)
            del column[:]

    # ------------------------------------------------------------------
    # Writers
    # ------------------------------------------------------------------

    def append(self, pc: int, kind: int, category: int, addr: int = 0,
               size: int = 0, dep: int = 1, flags: int = 0,
               origin: int = 0) -> None:
        """Append one instruction. Hot path: keep argument handling flat."""
        if self._sealed:
            raise TraceError("trace is frozen; append is invalid")
        flusher = self._flusher
        if flusher is not None and flusher.pending_rows:
            flusher.flush()  # keep row order across emission paths
        stage = self._stage
        stage[0].append(pc)
        stage[1].append(kind)
        stage[2].append(category)
        stage[3].append(addr)
        stage[4].append(size)
        stage[5].append(dep)
        stage[6].append(flags)
        stage[7].append(origin)
        if len(stage[0]) >= _STAGE_DRAIN_ROWS:
            self._drain_stage()

    def alloc_rows(self, count: int) -> int:
        """Reserve ``count`` committed rows; return the start index.

        The caller must fill ``buffer()[start:start+count]`` completely.
        Used by the staging drain and the burst engine's flush.
        """
        if self._sealed:
            raise TraceError("trace is frozen; appending rows is invalid")
        needed = self._n + count
        if needed > self._buf.shape[0]:
            self._grow(needed)
        start = self._n
        self._n = needed
        return start

    def buffer(self) -> np.ndarray:
        """The committed row-major buffer (valid rows: ``[:alloc'd]``)."""
        return self._buf

    def _grow(self, needed_rows: int) -> None:
        # Grow 8x: geometric growth keeps total copy volume at ~1/7 of
        # the final capacity (vs ~1x for doubling), and the copies are
        # the only real cost here — rows past the cursor are written
        # before they are ever read, so the buffer is left uninitialized.
        cap = self._buf.shape[0]
        new_cap = max(cap * 8, needed_rows)
        spill = self._spill_bytes
        if (self._spill_path is None and spill is not None
                and new_cap * _ROW_BYTES >= spill):
            if self._spill_to_disk(new_cap):
                return
        if self._spill_path is not None:
            self._remap(new_cap)
            return
        grown = np.empty((new_cap, 8), dtype=np.int64)
        grown[:self._n] = self._buf[:self._n]
        self._buf = grown

    # ------------------------------------------------------------------
    # Spill-to-disk storage
    # ------------------------------------------------------------------

    def _spill_to_disk(self, cap_rows: int) -> bool:
        """Move the buffer to a memmap under the cache's spill dir."""
        global _spill_seq
        directory = _spill_directory()
        if directory is None:
            self._spill_bytes = None  # caching off: stay in memory
            return False
        try:
            directory.mkdir(parents=True, exist_ok=True)
            _spill_seq += 1
            stem = f"trace-{os.getpid()}-{_spill_seq}"
            path = directory / f"{stem}.bin"
            mm = np.memmap(path, dtype=np.int64, mode="w+",
                           shape=(cap_rows, 8))
            # Sidecar-last: the .json marks the spill file as live and
            # complete, mirroring the cache's commit protocol so gc can
            # treat sidecar-less files as partial writes.
            sidecar = directory / f"{stem}.json"
            sidecar.write_text(
                '{"kind": "trace_spill", "pid": %d}\n' % os.getpid(),
                encoding="utf-8")
        except OSError:
            self._spill_bytes = None  # unwritable spill dir: stay in RAM
            return False
        mm[:self._n] = self._buf[:self._n]
        self._buf = mm
        self._spill_path = path
        from ..telemetry import TELEMETRY
        TELEMETRY.metrics.counter("trace.spilled").inc()
        return True

    def _remap(self, cap_rows: int) -> None:
        """Grow the spill file in place and re-map the buffer."""
        path = self._spill_path
        assert path is not None
        old = self._buf
        if isinstance(old, np.memmap):
            old.flush()
        del old
        self._buf = np.memmap(path, dtype=np.int64, mode="r+",
                              shape=(cap_rows, 8))

    @property
    def spill_path(self) -> Path | None:
        """Backing spill file, when the trace has migrated to disk."""
        return self._spill_path

    def close(self) -> None:
        """Release the backing spill file and/or reader mapping."""
        reader = self._reader
        if reader is not None:
            reader.close()
        path = self._spill_path
        if path is None:
            return
        self._spill_path = None
        buf = self._buf
        # Detach from the memmap before unlinking; keep the committed
        # rows readable afterwards by pulling them back into memory.
        self._buf = np.array(buf[:self._n], dtype=np.int64, copy=True)
        del buf
        for victim in (path, path.with_suffix(".json")):
            try:
                victim.unlink()
            except OSError:
                pass

    def __del__(self) -> None:  # pragma: no cover - GC timing dependent
        try:
            self.close()
        except Exception:
            pass

    # ------------------------------------------------------------------
    # Pickling (cross-process fan-out)
    # ------------------------------------------------------------------

    def attach_cache_ref(self, path: str | Path) -> None:
        """Record that ``path`` holds exactly this trace's bytes.

        The disk cache calls this after a store or load; from then on
        pickling this trace (fan-out IPC) ships the path instead of
        the arrays, as long as the trace has not grown since and the
        file still exists. Receivers re-open the file — for v2 payloads
        that is a lazy mmap, so N same-host workers share one set of
        page-cache bytes instead of deserializing N private copies.
        """
        self._ref_path = Path(path)
        self._ref_rows = len(self)

    def _pickle_ref(self) -> Path | None:
        path = self._ref_path
        if path is None or self._ref_rows != len(self):
            return None
        if not path.exists():
            return None
        return path

    def _materialize(self) -> None:
        """Pull a reader-backed trace fully into memory (drops the
        reader). Used when the backing file may not outlive a pickle."""
        reader = self._reader
        if reader is None:
            return
        arrays = {name: self.column(name) for name in _COLUMNS}
        count = reader.rows
        self._reader = None
        self._col_cache = {}
        self._buf = np.zeros((max(count, 1), 8), dtype=np.int64)
        self._n = count
        for j, name in enumerate(_COLUMNS):
            self._buf[:count, j] = arrays[name]
        self._frozen = None
        self._frozen_len = -1

    def __getstate__(self) -> dict:
        # Drain staging and the burst queue first — the flusher holds
        # the (unpicklable) compiled kernel and its queues are
        # meaningless in another process.
        self._sync()
        ref = self._pickle_ref()
        if ref is not None:
            from ..telemetry import TELEMETRY
            TELEMETRY.metrics.counter("trace.pickle_refs").inc()
            return {"_pickle_ref": str(ref), "_pickle_rows": len(self)}
        if self._reader is not None:
            self._materialize()
        state = self.__dict__.copy()
        state["_flusher"] = None
        state["_reader"] = None
        state["_col_cache"] = {}
        return state

    def __setstate__(self, state: dict) -> None:
        ref = state.get("_pickle_ref")
        if ref is None:
            self.__dict__.update(state)
            return
        # By-reference pickle: re-open the cache/trace file. If it was
        # evicted in flight this raises TraceError, which the supervised
        # fan-out treats like any worker failure and recomputes.
        loaded = type(self).load(ref)
        if len(loaded) != state["_pickle_rows"]:
            raise TraceError(
                f"trace reference {ref} holds {len(loaded)} rows, "
                f"expected {state['_pickle_rows']} (file changed "
                "between pickle and unpickle)")
        self.__dict__.update(loaded.__dict__)

    # ------------------------------------------------------------------
    # Freeze
    # ------------------------------------------------------------------

    def freeze(self) -> None:
        """Seal the trace: further appends (any path) fail loudly."""
        self._sync()
        self._sealed = True

    @property
    def frozen(self) -> bool:
        return self._sealed

    # ------------------------------------------------------------------
    # Readers
    # ------------------------------------------------------------------

    def arrays(self) -> dict[str, np.ndarray]:
        """Return the trace as numpy arrays (cached by length).

        Producers append through staging buffers for speed, so the cache
        is keyed on trace length rather than invalidated on every
        append. In-memory traces are returned with the canonical narrow
        dtypes; spilled traces return ``int64`` memmap-backed column
        views so reading a 100M-row trace does not materialize it.
        """
        self._sync()
        reader = self._reader
        if reader is not None:
            if self._frozen is None:
                self._frozen = {name: self.column(name)
                                for name in _COLUMNS}
                self._frozen_len = reader.rows
            return self._frozen
        if self._frozen is None or self._frozen_len != self._n:
            self._frozen_len = self._n
            n = self._n
            buf = self._buf
            if self._spill_path is not None:
                self._frozen = {name: buf[:n, j]
                                for j, name in enumerate(_COLUMNS)}
            else:
                self._frozen = {
                    name: np.ascontiguousarray(buf[:n, j], dtype=dtype)
                    for j, (name, dtype) in
                    enumerate(zip(_COLUMNS, _DTYPES))
                }
        return self._frozen

    def column(self, name: str) -> np.ndarray:
        if name not in _COLUMNS:
            raise TraceError(f"unknown trace column: {name!r}")
        reader = self._reader
        if reader is not None and self._frozen is None:
            # Per-column lazy decode: a consumer that only needs
            # ``category`` never pays for the pc/addr varint streams.
            cached = self._col_cache.get(name)
            if cached is None:
                cached = reader.column(name)
                self._col_cache[name] = cached
            return cached
        return self.arrays()[name]

    def category_counts(self) -> np.ndarray:
        """Instruction count per category value (index = category)."""
        if len(self) == 0:
            return np.zeros(32, dtype=np.int64)
        return np.bincount(self.column("category"), minlength=32)

    def _block(self, start: int, stop: int) -> dict[str, np.ndarray]:
        """Canonical-dtype columns for rows ``[start, stop)`` read
        straight from the committed buffer — one frame's worth at a
        time, so encoding a spilled trace streams through the memmap
        without materializing full columns."""
        buf = self._buf
        return {name: np.ascontiguousarray(buf[start:stop, j],
                                           dtype=dtype)
                for j, (name, dtype) in
                enumerate(zip(_COLUMNS, _DTYPES))}

    def save(self, path: str | Path, compressed: bool = True,
             codec: str | None = None) -> None:
        """Persist the trace: v2 columnar frames or a legacy ``.npz``.

        ``codec`` overrides the ``REPRO_TRACE_CODEC`` switch; in the
        npz format ``compressed=False`` trades disk for speed. Columns
        are always cast to the canonical dtypes, so the bytes on disk
        are identical whether or not the trace spilled.
        """
        fmt = codec if codec is not None else _codec.trace_codec()
        if fmt == "v2":
            self._sync()
            reader = self._reader
            if reader is not None and self._frozen is None:
                _codec.encode_file(path, reader.decode_range,
                                   reader.rows)
            else:
                _codec.encode_file(path, self._block, len(self))
            return
        arrays = self.arrays()
        canonical = {
            name: np.ascontiguousarray(arrays[name], dtype=dtype)
            for name, dtype in zip(_COLUMNS, _DTYPES)
        }
        saver = np.savez_compressed if compressed else np.savez
        with open(path, "wb") as handle:
            saver(handle, **canonical)

    @classmethod
    def _from_reader(cls, reader: "_codec.FrameReader",
                     ) -> "InstructionTrace":
        """A sealed trace lazily backed by an encoded file — columns
        and row ranges decode on demand; the full ``(n, 8)`` row-major
        buffer is never materialized."""
        trace = cls.__new__(cls)
        trace._buf = np.zeros((0, 8), dtype=np.int64)
        trace._n = 0
        trace._stage = tuple(array(code) for code in _TYPECODES)
        trace._flusher = None
        trace._sealed = True
        trace._spill_bytes = None
        trace._spill_path = None
        trace._frozen = None
        trace._frozen_len = -1
        trace._reader = reader
        trace._col_cache = {}
        trace._ref_path = Path(reader.path)
        trace._ref_rows = reader.rows
        return trace

    @classmethod
    def load(cls, path: str | Path) -> "InstructionTrace":
        """Load a trace stored with :meth:`save` (either format).

        The format is sniffed from magic bytes, never the extension.
        v2 files come back reader-backed (lazy); npz files are
        validated loudly — a missing *or* unexpected column set raises
        a :class:`TraceError` naming the offending path — and loaded
        eagerly.
        """
        path = Path(path)
        if _codec.sniff(path) == "v2":
            return cls._from_reader(_codec.FrameReader(path))
        try:
            data = np.load(path)
        except (OSError, ValueError) as exc:
            raise TraceError(
                f"unreadable trace file {path}: {exc!r}") from exc
        files = getattr(data, "files", None)
        if files is None:
            raise TraceError(
                f"trace file {path} is not a columnar archive")
        missing = [name for name in _COLUMNS if name not in files]
        extra = [name for name in files if name not in _COLUMNS]
        if missing or extra:
            raise TraceError(
                f"trace file {path} has wrong column set: "
                f"missing {missing}, unexpected {extra}")
        trace = cls()
        count = int(data[_COLUMNS[0]].shape[0])
        if count:
            start = trace.alloc_rows(count)
            buf = trace._buf
            for j, name in enumerate(_COLUMNS):
                buf[start:start + count, j] = data[name]
        trace.attach_cache_ref(path)
        return trace

    def slice_view(self, start: int, stop: int) -> dict[str, np.ndarray]:
        """Read-only view of rows ``[start, stop)`` as numpy arrays.

        On a reader-backed (v2-loaded) trace this decodes only the
        frames covering the range — block-mapped access, never the
        whole file.
        """
        if not (0 <= start <= stop <= len(self)):
            raise TraceError(
                f"slice [{start}, {stop}) out of range for trace of "
                f"length {len(self)}")
        if self._reader is not None and self._frozen is None:
            return self._reader.decode_range(start, stop)
        return {name: arr[start:stop]
                for name, arr in self.arrays().items()}
