"""Deferred burst emission: queue, template recorder, vectorized flush.

The scalar emit path costs one Python method call plus eight
``array.append`` calls *per host instruction*. The burst engine turns
each hot emit helper into roughly two list appends *per helper call*
(one template id, a few dynamic operands), and materializes rows later
in large vectorized batches — NumPy slice stamping, or the optional
compiled kernel in :mod:`repro.host._emit_kernel`.

Templates are not hand-written: they are **recorded from the scalar
emission code itself**. At first use, the engine temporarily swaps the
machine's ``_emit`` for a collector, runs the helper's emission-only
body a handful of times while varying each declared dynamic input by a
large delta, and solves the per-cell integer-linear coefficients
(``cell = static + coef * dyn``). A final probe run verifies the
reconstruction; any nonlinearity refuses the template and the helper
permanently falls back to the scalar path. Because recording happens
lazily at the first real call, site interning order — and therefore
every PC in the trace — is identical to a scalar run, which is what
makes the backends bit-identical by construction.

Ordering is hazard-free by construction as well: in burst mode *every*
emission goes through the queue. Templated helpers enqueue a template
id; irregular emissions (``HostMachine._emit``) enqueue a RAW entry
carrying all eight row values. The queue drains in FIFO order into the
trace's committed buffer, so interleavings like dealloc cascades behind
a decref burst land exactly where the scalar path would put them.
"""

from __future__ import annotations

from array import array

import numpy as np

from ..errors import TraceError

#: Reserved template id for raw (pre-computed) rows.
RAW_TID = 0

#: Flush the queue once this many *entries* are queued. The hot
#: enqueue path only checks ``len(order)`` — the exact row count is
#: computed once per flush from the template table instead of being
#: tracked per enqueue. Entries average a handful of rows each, so
#: 16K entries is a few MB of output: large enough to amortize the
#: per-flush fixed cost, small next to the committed buffer.
FLUSH_ENTRIES = 16384

#: Probe delta for coefficient solving (large, so small additive
#: constants in the emission code cannot alias a coefficient).
_DELTA = 1 << 22

#: Synthetic base values for implicit machine-attribute inputs.
_IMPLICIT_BASE = {"origin": 1 << 33, "sp": (1 << 34) + 4096}


class Template:
    """One recorded burst shape: static rows plus linear fixups."""

    __slots__ = ("tid", "rows", "arity", "static", "fixups")

    def __init__(self, tid: int, static: np.ndarray,
                 fixups: list[tuple[int, int, int, int]],
                 arity: int) -> None:
        self.tid = tid
        self.rows = int(static.shape[0])
        self.arity = arity
        self.static = static
        self.fixups = fixups  # (row, col, dyn_index, coefficient)


class BurstEngine:
    """Per-machine deferred emission queue and template registry."""

    def __init__(self, machine, use_kernel: bool = True) -> None:
        self.machine = machine
        self.trace = machine.trace
        # Machine-width queues: ``array('q')`` appends as fast as a
        # list, and the flush converts to NumPy zero-copy via
        # ``np.frombuffer`` instead of walking a list of PyObjects.
        self.order = array("q")
        self.dyn = array("q")
        raw = Template(RAW_TID, np.zeros((1, 8), dtype=np.int64),
                       [(0, j, j, 1) for j in range(8)], arity=8)
        self.templates: list[Template] = [raw]
        self._rows_tab = np.array([1], dtype=np.int64)
        self._arity_tab = np.array([8], dtype=np.int64)
        self._tabs_dirty = False
        self._kernel = None
        if use_kernel:
            from ._emit_kernel import get_kernel
            self._kernel = get_kernel()
        self._packed = None  # packed template tables for the kernel
        self.trace._flusher = self

    def __getstate__(self) -> dict:
        # The compiled kernel (ctypes handles) cannot cross a process
        # boundary; it is re-acquired lazily on the other side.
        state = self.__dict__.copy()
        state["_kernel"] = self._kernel is not None
        state["_packed"] = None
        return state

    def __setstate__(self, state: dict) -> None:
        want_kernel = state.pop("_kernel")
        self.__dict__.update(state)
        self._kernel = None
        if want_kernel:
            from ._emit_kernel import get_kernel
            self._kernel = get_kernel()

    @property
    def pending_rows(self) -> int:
        """Exact queued-row count (computed on demand, never tracked)."""
        order = self.order
        if not order:
            return 0
        if self._tabs_dirty:
            self._rebuild_tabs()
        return int(self._rows_tab[
            np.frombuffer(order, dtype=np.int64)].sum())

    # ------------------------------------------------------------------
    # Template recording
    # ------------------------------------------------------------------

    def record(self, thunk, dyn_base: list[int],
               implicit: tuple[str, ...] = ()) -> int | None:
        """Record ``thunk`` into a template; return its id (or None).

        ``thunk(values)`` must run the helper's *emission-only* body
        with the declared dynamic inputs ``values`` (same length as
        ``dyn_base``) — no semantic side effects. ``implicit`` names
        machine attributes (``origin``, ``sp``) that the emission reads;
        they become trailing dynamic inputs the caller appends at queue
        time. Returns None when the emission is not integer-linear in
        the inputs, in which case the caller must keep using the scalar
        path for this shape.
        """
        machine = self.machine
        saved_emit = machine._emit
        saved_origin = machine.origin
        saved_sp = machine.sp
        # Recording must run the *scalar* emission code: pop the
        # burst-mode instance shadows (c_call helpers, raw single-row
        # emitters) so the thunk's rows reach the collector through the
        # class-level bodies instead of the raw queue.
        from .machine import BURST_SHADOWED
        saved_shadows = {}
        for name in BURST_SHADOWED:
            if name in machine.__dict__:
                saved_shadows[name] = machine.__dict__.pop(name)
        n_decl = len(dyn_base)
        names = list(implicit)
        base = [int(v) for v in dyn_base] + \
            [_IMPLICIT_BASE[name] for name in names]
        n_inputs = len(base)

        def run(values: list[int]) -> list[list[int]]:
            rows: list[list[int]] = []

            def collect(pc, kind, cat, addr, size, dep, flags):
                rows.append([pc, kind, cat, addr, size, dep, flags,
                             machine.origin])

            for name, value in zip(names, values[n_decl:]):
                setattr(machine, name, value)
            machine._emit = collect
            try:
                thunk(values[:n_decl])
            finally:
                machine._emit = saved_emit
                machine.origin = saved_origin
                machine.sp = saved_sp
            return rows

        try:
            rows0 = run(base)
            k = len(rows0)
            coefs: dict[tuple[int, int], list[int]] = {}
            ok = True
            for j in range(n_inputs):
                probe = list(base)
                probe[j] += _DELTA
                rows_j = run(probe)
                if len(rows_j) != k:
                    ok = False
                    break
                for r in range(k):
                    for c in range(8):
                        diff = rows_j[r][c] - rows0[r][c]
                        if diff == 0:
                            continue
                        if diff % _DELTA:
                            ok = False
                            break
                        coefs.setdefault((r, c), [0] * n_inputs)[j] = \
                            diff // _DELTA
                    if not ok:
                        break
                if not ok:
                    break
            if not ok:
                return None
            # Verify with a distinct multiplier per input to catch
            # cross-talk between inputs.
            verify = [value + (j + 2) * _DELTA
                      for j, value in enumerate(base)]
            rows_v = run(verify)
            if len(rows_v) != k:
                return None
            static = np.zeros((k, 8), dtype=np.int64)
            fixups: list[tuple[int, int, int, int]] = []
            for r in range(k):
                for c in range(8):
                    cell_coefs = coefs.get((r, c))
                    value = rows0[r][c]
                    if cell_coefs is not None:
                        for j, coef in enumerate(cell_coefs):
                            value -= coef * base[j]
                            if coef:
                                fixups.append((r, c, j, coef))
                    static[r, c] = value
                    predicted = value
                    if cell_coefs is not None:
                        for j, coef in enumerate(cell_coefs):
                            predicted += coef * verify[j]
                    if predicted != rows_v[r][c]:
                        return None
        finally:
            machine._emit = saved_emit
            machine.origin = saved_origin
            machine.sp = saved_sp
            machine.__dict__.update(saved_shadows)
        tid = len(self.templates)
        self.templates.append(Template(tid, static, fixups, n_inputs))
        self._tabs_dirty = True
        return tid

    # ------------------------------------------------------------------
    # Flush
    # ------------------------------------------------------------------

    def _rebuild_tabs(self) -> None:
        self._rows_tab = np.array(
            [t.rows for t in self.templates], dtype=np.int64)
        self._arity_tab = np.array(
            [t.arity for t in self.templates], dtype=np.int64)
        self._packed = None
        self._tabs_dirty = False

    def flush(self) -> None:
        """Materialize every queued entry into the trace buffer."""
        order = self.order
        if not order:
            return
        trace = self.trace
        if trace.frozen:
            raise TraceError(
                "trace is frozen; flushing queued burst emissions is "
                "invalid")
        trace._drain_stage()  # staged rows predate the queued entries
        if self._tabs_dirty:
            self._rebuild_tabs()
        order_arr = np.frombuffer(order, dtype=np.int64)
        dyn_arr = np.frombuffer(self.dyn, dtype=np.int64)
        total = int(self._rows_tab[order_arr].sum())
        start = trace.alloc_rows(total)
        buf = trace.buffer()
        if self._kernel is not None:
            self._flush_kernel(order_arr, dyn_arr, buf, start, total)
        else:
            self._flush_numpy(order_arr, dyn_arr, buf, start)
        # Clear in place (the frombuffer views must be dropped first —
        # an array cannot resize while exporting its buffer). Keeping
        # the array objects' identity stable lets hot enqueue sites
        # cache the bound ``append``/``extend`` methods across flushes.
        del order_arr, dyn_arr
        del order[:]
        del self.dyn[:]

    def _flush_numpy(self, order_arr: np.ndarray, dyn_arr: np.ndarray,
                     buf: np.ndarray, start: int) -> None:
        rows_per = self._rows_tab[order_arr]
        starts = np.empty(len(order_arr), dtype=np.int64)
        starts[0] = start
        np.cumsum(rows_per[:-1], out=starts[1:])
        starts[1:] += start
        dstarts = np.empty(len(order_arr), dtype=np.int64)
        dstarts[0] = 0
        arity_per = self._arity_tab[order_arr]
        np.cumsum(arity_per[:-1], out=dstarts[1:])
        for tid in np.unique(order_arr):
            template = self.templates[tid]
            sel = np.nonzero(order_arr == tid)[0]
            entry_starts = starts[sel]
            entry_dyn = dstarts[sel]
            if tid == RAW_TID:
                buf[entry_starts] = \
                    dyn_arr[entry_dyn[:, None] + np.arange(8)]
                continue
            k = template.rows
            idx = (entry_starts[:, None]
                   + np.arange(k, dtype=np.int64)).ravel()
            buf[idx] = np.broadcast_to(
                template.static,
                (len(entry_starts), k, 8)).reshape(-1, 8)
            for row, col, dyn_index, coef in template.fixups:
                values = dyn_arr[entry_dyn + dyn_index]
                if coef == 1:
                    buf[entry_starts + row, col] += values
                else:
                    buf[entry_starts + row, col] += coef * values

    def _flush_kernel(self, order_arr: np.ndarray, dyn_arr: np.ndarray,
                      buf: np.ndarray, start: int, total: int) -> None:
        if self._packed is None:
            self._pack_templates()
        statics, offs, rows, arity, fix_off, fix_cnt, fixups = \
            self._packed
        out = buf[start:start + total]
        written = self._kernel.burst_flush(
            order_arr, len(order_arr), dyn_arr, statics, offs, rows,
            arity, fix_off, fix_cnt, fixups, out)
        if written != total:  # pragma: no cover - defensive
            raise TraceError(
                f"burst kernel wrote {written} rows, expected {total}")

    def _pack_templates(self) -> None:
        """Concatenate template tables into flat kernel-ready arrays."""
        statics_parts: list[np.ndarray] = []
        offs, rows, arity, fix_off, fix_cnt = [], [], [], [], []
        fixups_parts: list[int] = []
        row_cursor = 0
        fix_cursor = 0
        for template in self.templates:
            offs.append(row_cursor)
            rows.append(template.rows)
            arity.append(template.arity)
            statics_parts.append(template.static)
            row_cursor += template.rows
            fix_off.append(fix_cursor)
            fix_cnt.append(len(template.fixups))
            for fixup in template.fixups:
                fixups_parts.extend(fixup)
            fix_cursor += len(template.fixups)
        self._packed = (
            np.ascontiguousarray(np.concatenate(statics_parts)),
            np.array(offs, dtype=np.int64),
            np.array(rows, dtype=np.int64),
            np.array(arity, dtype=np.int64),
            np.array(fix_off, dtype=np.int64),
            np.array(fix_cnt, dtype=np.int64),
            np.array(fixups_parts or [0], dtype=np.int64),
        )
