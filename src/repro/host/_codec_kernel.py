"""Optional compiled kernel for the trace codec's varint hot loop.

The v2 trace codec (:mod:`repro.host.codec`) spends essentially all of
its time turning uint64 zigzag values into LEB128 varint bytes and
back. Both directions are tight byte-at-a-time loops over buffers the
delta/zigzag stages have already prepared, so — exactly like the OOO
core's :mod:`repro.uarch._ooo_kernel` and the burst flush's
:mod:`repro.host._emit_kernel` — this module builds them into a
per-process shared library with one ``cc -O2 -shared`` invocation at
first use. Everything is best-effort: no compiler, a failed build, or
``REPRO_CODEC_KERNEL=off`` all degrade silently to the pure-NumPy
reference in ``codec.py``, and both paths produce bit-identical bytes
(LEB128 is canonical: one encoding per value, so the kernel is an
evaluation-order change, not a format change).

This is deliberately *not* a build-time extension: the repository must
stay importable from source with nothing but numpy.
"""

from __future__ import annotations

import atexit
import ctypes
import os
import shutil
import subprocess
import sys
import tempfile
import threading

import numpy as np

#: Environment switch: ``auto`` (default) compiles when possible,
#: ``off`` disables the kernel entirely (pure-NumPy codec).
KERNEL_ENV = "REPRO_CODEC_KERNEL"

_SOURCE = r"""
#include <stdint.h>

/* Canonical LEB128: 7 payload bits per byte, high bit = continuation.
   Returns the number of bytes written; the caller sizes `out` at
   10 * n (the int64 worst case). */

int64_t varint_encode(const uint64_t *vals, int64_t n, uint8_t *out)
{
    int64_t w = 0;
    for (int64_t i = 0; i < n; i++) {
        uint64_t v = vals[i];
        while (v >= 0x80) {
            out[w++] = (uint8_t)(v & 0x7F) | 0x80;
            v >>= 7;
        }
        out[w++] = (uint8_t)v;
    }
    return w;
}

/* Decode exactly `count` values from `buf`. Returns the number of
   bytes consumed, or -1 when the stream is truncated or a value runs
   past 10 bytes (not a canonical int64 varint). The caller treats any
   return != nbytes as corruption. */

int64_t varint_decode(const uint8_t *buf, int64_t nbytes,
                      uint64_t *out, int64_t count)
{
    int64_t r = 0;
    for (int64_t i = 0; i < count; i++) {
        uint64_t v = 0;
        int shift = 0;
        for (;;) {
            if (r >= nbytes || shift >= 70)
                return -1;
            uint8_t b = buf[r++];
            v |= (uint64_t)(b & 0x7F) << shift;
            if (!(b & 0x80))
                break;
            shift += 7;
        }
        out[i] = v;
    }
    return r;
}
"""

_lock = threading.Lock()
_kernel = None
_kernel_tried = False

_PU64 = ctypes.POINTER(ctypes.c_uint64)
_PU8 = ctypes.POINTER(ctypes.c_uint8)


def _build() -> ctypes.CDLL | None:
    cc = (os.environ.get("CC") or shutil.which("cc")
          or shutil.which("gcc") or shutil.which("clang"))
    if cc is None:
        return None
    tmpdir = tempfile.mkdtemp(prefix="repro-codec-kernel-")
    atexit.register(shutil.rmtree, tmpdir, ignore_errors=True)
    src = os.path.join(tmpdir, "codec_kernel.c")
    suffix = ".dylib" if sys.platform == "darwin" else ".so"
    lib = os.path.join(tmpdir, "codec_kernel" + suffix)
    with open(src, "w", encoding="utf-8") as fh:
        fh.write(_SOURCE)
    cmd = [cc, "-O2", "-shared", "-fPIC", "-o", lib, src]
    try:
        subprocess.run(cmd, check=True, capture_output=True, timeout=120)
        dll = ctypes.CDLL(lib)
    except (OSError, subprocess.SubprocessError):
        return None
    i64 = ctypes.c_int64
    dll.varint_encode.restype = i64
    dll.varint_encode.argtypes = [_PU64, i64, _PU8]
    dll.varint_decode.restype = i64
    dll.varint_decode.argtypes = [_PU8, i64, _PU64, i64]
    return dll


class _CodecKernel:
    """Thin numpy-aware wrapper around the compiled entry points."""

    __slots__ = ("_dll",)

    def __init__(self, dll: ctypes.CDLL) -> None:
        self._dll = dll

    def encode(self, values: np.ndarray, out: np.ndarray) -> int:
        """Write varints for ``values`` into ``out``; bytes written."""
        return int(self._dll.varint_encode(
            values.ctypes.data_as(_PU64), values.size,
            out.ctypes.data_as(_PU8)))

    def decode(self, buf: np.ndarray, out: np.ndarray) -> int:
        """Decode ``out.size`` varints from ``buf``; bytes consumed
        (-1 on malformed input)."""
        return int(self._dll.varint_decode(
            buf.ctypes.data_as(_PU8), buf.size,
            out.ctypes.data_as(_PU64), out.size))


def get_kernel() -> _CodecKernel | None:
    """The compiled codec kernel, building on first use (or ``None``)."""
    global _kernel, _kernel_tried
    if os.environ.get(KERNEL_ENV, "auto").lower() in ("off", "0", "no"):
        return None
    with _lock:
        if not _kernel_tried:
            _kernel_tried = True
            dll = _build()
            _kernel = _CodecKernel(dll) if dll is not None else None
    return _kernel


def kernel_available() -> bool:
    return get_kernel() is not None
