"""The 37 JetStream-analog workloads for the V8-analog runtime.

JetStream 1.1 "combines a variety of JavaScript benchmarks, covering a
variety of advanced workloads and programming techniques" (paper Section
III). Each entry here reproduces its namesake's workload class as a
MiniPy program executed by :class:`~repro.vm.v8.V8VM`.
"""

from __future__ import annotations

from ...errors import WorkloadError

_SOURCES: dict[str, str] = {}


def _register(name: str, source: str) -> None:
    _SOURCES[name] = source


_register("3d-cube", """
def rotate(vertices, angle):
    ca = math.cos(angle)
    sa = math.sin(angle)
    out = []
    for v in vertices:
        x, y, z = v
        out.append((x * ca - z * sa, y, x * sa + z * ca))
    return out

verts = [(-1.0, -1.0, -1.0), (1.0, -1.0, -1.0), (1.0, 1.0, -1.0),
         (-1.0, 1.0, -1.0), (-1.0, -1.0, 1.0), (1.0, -1.0, 1.0),
         (1.0, 1.0, 1.0), (-1.0, 1.0, 1.0)]
total = 0.0
for step in range(60):
    verts = rotate(verts, 0.1)
    for v in verts:
        x, y, z = v
        total = total + x + z
print(int(total * 1000))
""")

_register("3d-raytrace", """
def intersect(ox, oy, oz, dx, dy, dz, cx, cy, cz, r):
    lx = ox - cx
    ly = oy - cy
    lz = oz - cz
    b = 2.0 * (lx * dx + ly * dy + lz * dz)
    c = lx * lx + ly * ly + lz * lz - r * r
    disc = b * b - 4.0 * c
    if disc < 0.0:
        return -1.0
    return (0.0 - b - math.sqrt(disc)) / 2.0

hits = 0
for py in range(14):
    for px in range(14):
        dx = px / 14.0 - 0.5
        dy = py / 14.0 - 0.5
        dz = -1.0
        norm = math.sqrt(dx * dx + dy * dy + dz * dz)
        t = intersect(0.0, 0.0, 0.0, dx / norm, dy / norm, dz / norm,
                      0.0, 0.0, -3.0, 1.0)
        if t > 0.0:
            hits = hits + 1
print(hits)
""")

_register("base64", """
def encode(data, alphabet):
    out = []
    i = 0
    while i + 2 < len(data):
        n = data[i] * 65536 + data[i + 1] * 256 + data[i + 2]
        out.append(alphabet[n // 262144])
        out.append(alphabet[(n // 4096) % 64])
        out.append(alphabet[(n // 64) % 64])
        out.append(alphabet[n % 64])
        i = i + 3
    return "".join(out)

alphabet = "ABCDEFGHIJKLMNOPQRSTUVWXYZ" + \\
           "abcdefghijklmnopqrstuvwxyz0123456789+/"
data = []
for i in range(240):
    data.append((i * 37 + 11) % 256)
text = encode(data, alphabet)
print(str(len(text)) + " " + text[0:8])
""")

_register("bigfib.cpp", """
a = 0
b = 1
for i in range(180):
    c = a + b
    a = b
    b = c
print(len(str(b)))
""")

_register("box2d", """
def step(xs, ys, vxs, vys, n):
    for i in range(n):
        vys[i] = vys[i] - 0.1
        xs[i] = xs[i] + vxs[i]
        ys[i] = ys[i] + vys[i]
        if ys[i] < 0.0:
            ys[i] = 0.0 - ys[i]
            vys[i] = vys[i] * -0.8

n = 20
xs = []
ys = []
vxs = []
vys = []
for i in range(n):
    xs.append(float(i))
    ys.append(10.0 + i)
    vxs.append(0.1 * i)
    vys.append(0.0)
for s in range(50):
    step(xs, ys, vxs, vys, n)
total = 0.0
for i in range(n):
    total = total + ys[i]
print(int(total * 100))
""")

_register("cdjs", """
def heap_push(heap, item):
    heap.append(item)
    i = len(heap) - 1
    while i > 0:
        parent = (i - 1) // 2
        if heap[parent] > heap[i]:
            t = heap[parent]
            heap[parent] = heap[i]
            heap[i] = t
            i = parent
        else:
            break

def heap_pop(heap):
    top = heap[0]
    last = heap.pop()
    if len(heap) > 0:
        heap[0] = last
        i = 0
        while True:
            left = 2 * i + 1
            right = 2 * i + 2
            small = i
            if left < len(heap) and heap[left] < heap[small]:
                small = left
            if right < len(heap) and heap[right] < heap[small]:
                small = right
            if small == i:
                break
            t = heap[small]
            heap[small] = heap[i]
            heap[i] = t
            i = small
    return top

heap = []
total = 0
for i in range(150):
    heap_push(heap, (i * 7919) % 513)
while len(heap) > 0:
    total = total + heap_pop(heap) * len(heap)
print(total)
""")

_register("code-first-load", """
def tokenize(src):
    tokens = []
    word = []
    for ch in src:
        if ch == " " or ch == ";":
            if len(word) > 0:
                tokens.append("".join(word))
                word = []
            if ch == ";":
                tokens.append(";")
        else:
            word.append(ch)
    if len(word) > 0:
        tokens.append("".join(word))
    return tokens

src = "var x = 1; var y = x + 2; function f a b ; return a + b * y;"
total = 0
for rep in range(25):
    tokens = tokenize(src)
    total = total + len(tokens)
print(total)
""")

_register("code-multi-load", """
def parse_statements(tokens):
    statements = 0
    depth = 0
    for t in tokens:
        if t == "{":
            depth = depth + 1
        elif t == "}":
            depth = depth - 1
        elif t == ";" and depth == 0:
            statements = statements + 1
    return statements

sources = []
for i in range(10):
    sources.append(["var", "a" + str(i), "=", str(i), ";", "{",
                    "call", ";", "}", ";"])
total = 0
for rep in range(30):
    for tokens in sources:
        total = total + parse_statements(tokens)
print(total)
""")

_register("container.cpp", """
data = []
for i in range(300):
    data.append((i * 31) % 97)
removed = 0
i = 0
while i < len(data):
    if data[i] % 7 == 0:
        data.pop(i)
        removed = removed + 1
    else:
        i = i + 1
total = 0
for v in data:
    total = total + v
print(str(removed) + " " + str(total))
""")

_register("crypto", """
state = 2463534242
out = 0
for i in range(600):
    state = state ^ ((state << 13) % 4294967296)
    state = state ^ (state >> 17)
    state = state ^ ((state << 5) % 4294967296)
    state = state % 4294967296
    out = (out + state) % 1000000007
print(out)
""")

_register("crypto-aes", """
sbox = []
for i in range(256):
    sbox.append(((i * 131) + 42) % 256)
state = []
for i in range(16):
    state.append((i * 11) % 256)
for r in range(40):
    for i in range(16):
        state[i] = sbox[state[i] ^ (r % 256)]
    first = state[0]
    for i in range(15):
        state[i] = state[i + 1]
    state[15] = first
total = 0
for i in range(16):
    total = total + state[i]
print(total)
""")

_register("crypto-md5", """
def leftrotate(x, c):
    return ((x << c) | (x >> (32 - c))) % 4294967296

a = 1732584193
b = 4023233417
c = 2562383102
d = 271733878
for i in range(320):
    f = (b & c) | ((4294967295 - b) & d)
    temp = d
    d = c
    c = b
    b = (b + leftrotate((a + f + i) % 4294967296, (i % 4) * 5 + 7)) \\
        % 4294967296
    a = temp
print((a + b + c + d) % 1000000007)
""")

_register("crypto-sha1", """
def rol(x, c):
    return ((x << c) | (x >> (32 - c))) % 4294967296

h0 = 1732584193
h1 = 4023233417
h2 = 2562383102
h3 = 271733878
h4 = 3285377520
for i in range(300):
    f = (h1 & h2) | ((4294967295 - h1) & h3)
    temp = (rol(h0, 5) + f + h4 + i) % 4294967296
    h4 = h3
    h3 = h2
    h2 = rol(h1, 30)
    h1 = h0
    h0 = temp
print((h0 + h1 + h2 + h3 + h4) % 1000000007)
""")

_register("date-format-tofte", """
def pad(n):
    if n < 10:
        return "0" + str(n)
    return str(n)

months = ["Jan", "Feb", "Mar", "Apr", "May", "Jun", "Jul", "Aug",
          "Sep", "Oct", "Nov", "Dec"]
total = 0
for day in range(200):
    y = 2000 + day // 365
    m = (day // 28) % 12
    d = day % 28 + 1
    text = str(y) + "-" + pad(m + 1) + "-" + pad(d) + " (" + \\
        months[m] + ")"
    total = total + len(text)
print(total)
""")

_register("date-format-xparb", """
def format12(hour, minute):
    suffix = "AM"
    h = hour
    if hour >= 12:
        suffix = "PM"
        h = hour - 12
    if h == 0:
        h = 12
    ms = str(minute)
    if minute < 10:
        ms = "0" + ms
    return str(h) + ":" + ms + " " + suffix

total = 0
for t in range(400):
    text = format12(t % 24, (t * 7) % 60)
    total = total + len(text)
print(total)
""")

_register("delta-blue", """
class Var:
    def __init__(self, v):
        self.v = v
        self.stay = False

class Eq:
    def __init__(self, a, b):
        self.a = a
        self.b = b

    def run(self):
        if self.a.stay:
            self.b.v = self.a.v
        else:
            self.a.v = self.b.v

total = 0
for c in range(12):
    chain = []
    for i in range(10):
        chain.append(Var(i + c))
    chain[0].stay = True
    eqs = []
    for i in range(9):
        eqs.append(Eq(chain[i], chain[i + 1]))
    for r in range(4):
        for e in eqs:
            e.run()
    total = total + chain[9].v
print(total)
""")

_register("dry.c", """
class Record:
    def __init__(self, discr, enum, int_comp, string_comp):
        self.discr = discr
        self.enum = enum
        self.int_comp = int_comp
        self.string_comp = string_comp
        self.next = None

total = 0
head = None
for i in range(120):
    rec = Record(i % 3, i % 5, i * 7 % 101, "DHRYSTONE-" + str(i % 4))
    rec.next = head
    head = rec
node = head
while not node is None:
    if node.discr == 0:
        total = total + node.int_comp
    elif node.enum == 2:
        total = total + 1
    node = node.next
print(total)
""")

_register("earley-boyer", """
def rewrite(term, depth):
    if depth == 0:
        return term
    if term[0] == "and":
        return ("if", rewrite(term[1], depth - 1),
                rewrite(term[2], depth - 1), ("f",))
    if term[0] == "or":
        return ("if", rewrite(term[1], depth - 1), ("t",),
                rewrite(term[2], depth - 1))
    return term

def size(term):
    total = 1
    for part in term:
        if not isinstance_tuple(part):
            continue
        total = total + size(part)
    return total

def isinstance_tuple(x):
    return not x is None and not x == "and" and not x == "or" and \\
        not x == "if" and not x == "t" and not x == "f" and len(x) > 0 \\
        and not x[0] == x

total = 0
for rep in range(12):
    term = ("and", ("or", ("t",), ("f",)), ("and", ("t",), ("f",)))
    for d in range(4):
        term = rewrite(term, d)
    total = total + len(term)
print(total)
""")

_register("float-mm.c", """
def matmul(a, b, n):
    out = []
    for i in range(n):
        row = []
        for j in range(n):
            total = 0.0
            for k in range(n):
                total = total + a[i][k] * b[k][j]
            row.append(total)
        out.append(row)
    return out

n = 9
a = []
b = []
for i in range(n):
    ra = []
    rb = []
    for j in range(n):
        ra.append(float((i + j) % 5))
        rb.append(float((i * j) % 7))
    a.append(ra)
    b.append(rb)
c = matmul(a, b, n)
for rep in range(3):
    c = matmul(c, b, n)
print(int(c[n - 1][n - 1]))
""")

_register("gbemu", """
def run_cpu(mem, steps):
    pc = 0
    acc = 0
    for s in range(steps):
        op = mem[pc % 256]
        if op < 64:
            acc = (acc + op) % 65536
        elif op < 128:
            acc = (acc ^ op) % 65536
        elif op < 192:
            mem[(pc + acc) % 256] = (op + acc) % 256
        else:
            acc = mem[(op + acc) % 256]
        pc = pc + 1
    return acc

mem = []
for i in range(256):
    mem.append((i * 77 + 13) % 256)
print(run_cpu(mem, 1200))
""")

_register("gcc-loops.cpp", """
n = 150
a = []
bb = []
for i in range(n):
    a.append(i % 13)
    bb.append((i * 3) % 7)
s1 = 0
for i in range(n):
    s1 = s1 + a[i] * bb[i]
for i in range(1, n):
    a[i] = a[i] + a[i - 1]
s2 = 0
for i in range(n):
    if a[i] % 2 == 0:
        s2 = s2 + bb[i]
print(str(s1) + " " + str(s2) + " " + str(a[n - 1]))
""")

_register("hash-map", """
table = {}
for i in range(400):
    table[(i * 2654435761) % 1024] = i
hits = 0
total = 0
for i in range(800):
    key = (i * 40503) % 1024
    if key in table:
        hits = hits + 1
        total = total + table[key]
print(str(hits) + " " + str(total % 100000))
""")

_register("mandreel", """
total = 0
for py in range(20):
    for px in range(20):
        x0 = px / 10.0 - 1.5
        y0 = py / 10.0 - 1.0
        x = 0.0
        y = 0.0
        it = 0
        while x * x + y * y < 4.0 and it < 20:
            xt = x * x - y * y + x0
            y = 2.0 * x * y + y0
            x = xt
            it = it + 1
        total = total + it
print(total)
""")

_register("n-body", """
class Body:
    def __init__(self, x, y, vx, vy, m):
        self.x = x
        self.y = y
        self.vx = vx
        self.vy = vy
        self.m = m

def advance(bodies, dt):
    n = len(bodies)
    for i in range(n):
        bi = bodies[i]
        for j in range(i + 1, n):
            bj = bodies[j]
            dx = bi.x - bj.x
            dy = bi.y - bj.y
            d2 = dx * dx + dy * dy
            mag = dt / (d2 * math.sqrt(d2))
            bi.vx = bi.vx - dx * bj.m * mag
            bi.vy = bi.vy - dy * bj.m * mag
            bj.vx = bj.vx + dx * bi.m * mag
            bj.vy = bj.vy + dy * bi.m * mag
    for b in bodies:
        b.x = b.x + dt * b.vx
        b.y = b.y + dt * b.vy

bodies = [Body(0.0, 0.0, 0.0, 0.0, 39.0), Body(4.8, -1.1, 0.6, 2.8, 0.04),
          Body(8.3, 4.1, -1.0, 1.8, 0.01), Body(12.8, -15.1, 1.0, 0.8,
                                                0.002)]
for s in range(40):
    advance(bodies, 0.01)
print(int(bodies[1].x * 10000))
""")

_register("n-body.c", """
x = [0.0, 4.8, 8.3, 12.8]
y = [0.0, -1.1, 4.1, -15.1]
vx = [0.0, 0.6, -1.0, 1.0]
vy = [0.0, 2.8, 1.8, 0.8]
m = [39.0, 0.04, 0.01, 0.002]
for s in range(50):
    for i in range(4):
        for j in range(i + 1, 4):
            dx = x[i] - x[j]
            dy = y[i] - y[j]
            d2 = dx * dx + dy * dy
            mag = 0.01 / (d2 * math.sqrt(d2))
            vx[i] = vx[i] - dx * m[j] * mag
            vy[i] = vy[i] - dy * m[j] * mag
            vx[j] = vx[j] + dx * m[i] * mag
            vy[j] = vy[j] + dy * m[i] * mag
    for i in range(4):
        x[i] = x[i] + 0.01 * vx[i]
        y[i] = y[i] + 0.01 * vy[i]
print(int(x[1] * 10000))
""")

_register("navier-stokes", """
def lin_solve(grid, n, iters):
    for it in range(iters):
        for i in range(1, n - 1):
            row = grid[i]
            up = grid[i - 1]
            down = grid[i + 1]
            for j in range(1, n - 1):
                row[j] = (row[j - 1] + row[j + 1] + up[j] + down[j]) \\
                    * 0.25

n = 16
grid = []
for i in range(n):
    row = []
    for j in range(n):
        row.append(float((i * j) % 9))
    grid.append(row)
lin_solve(grid, n, 6)
total = 0.0
for i in range(n):
    for j in range(n):
        total = total + grid[i][j]
print(int(total * 100))
""")

_register("pdfjs", """
def parse_stream(data):
    objects = 0
    streams = 0
    i = 0
    while i < len(data):
        b = data[i]
        if b == 111:
            objects = objects + 1
            i = i + 2
        elif b == 115:
            streams = streams + 1
            length = data[(i + 1) % len(data)]
            i = i + 2 + length % 16
        else:
            i = i + 1
    return (objects, streams)

data = []
for i in range(900):
    data.append((i * 91 + 17) % 256)
o, s = parse_stream(data)
print(str(o) + " " + str(s))
""")

_register("proto-raytracer", """
def make_vec(x, y, z):
    v = {}
    v["x"] = x
    v["y"] = y
    v["z"] = z
    return v

def dot(a, b):
    return a["x"] * b["x"] + a["y"] * b["y"] + a["z"] * b["z"]

def sub(a, b):
    return make_vec(a["x"] - b["x"], a["y"] - b["y"], a["z"] - b["z"])

center = make_vec(0.0, 0.0, -3.0)
origin = make_vec(0.0, 0.0, 0.0)
hits = 0
for py in range(12):
    for px in range(12):
        d = make_vec(px / 12.0 - 0.5, py / 12.0 - 0.5, -1.0)
        oc = sub(origin, center)
        b = 2.0 * dot(oc, d)
        c = dot(oc, oc) - 1.0
        if b * b - 4.0 * dot(d, d) * c > 0.0:
            hits = hits + 1
print(hits)
""")

_register("quicksort.c", """
def quicksort(arr, lo, hi):
    if lo >= hi:
        return 0
    pivot = arr[(lo + hi) // 2]
    i = lo
    j = hi
    while i <= j:
        while arr[i] < pivot:
            i = i + 1
        while arr[j] > pivot:
            j = j - 1
        if i <= j:
            t = arr[i]
            arr[i] = arr[j]
            arr[j] = t
            i = i + 1
            j = j - 1
    quicksort(arr, lo, j)
    quicksort(arr, i, hi)
    return 0

arr = []
x = 7
for i in range(250):
    x = (x * 1103515245 + 12345) % 2147483648
    arr.append(x % 1000)
quicksort(arr, 0, len(arr) - 1)
print(str(arr[0]) + " " + str(arr[124]) + " " + str(arr[249]))
""")

_register("regex-dna", """
bases = "acgt"
out = []
x = 99
for i in range(700):
    x = (x * 1103515245 + 12345) % 2147483648
    out.append(bases[x % 4])
dna = "".join(out)
total = 0
for p in ["ag+c", "[ct]ga", "a[acg]t"]:
    total = total + len(re.findall(p, dna))
print(total)
""")

_register("regexp-2010", """
text = ""
parts = []
for i in range(80):
    parts.append("id=" + str(i) + "&name=user" + str(i % 9) + ";")
text = "".join(parts)
total = 0
total = total + len(re.findall("id=[0-9]+", text))
total = total + len(re.findall("name=user[0-9]", text))
m = re.search("id=4[0-9]", text)
if not m is None:
    total = total + len(m)
print(total)
""")

_register("richards", """
class Task:
    def __init__(self, ident, priority):
        self.ident = ident
        self.priority = priority
        self.work = 0

    def run(self, amount):
        self.work = self.work + amount * self.priority
        return self.work

tasks = []
for i in range(5):
    tasks.append(Task(i, i + 1))
total = 0
for it in range(120):
    t = tasks[it % 5]
    total = total + t.run(it % 3)
print(total)
""")

_register("splay", """
class Node:
    def __init__(self, key):
        self.key = key
        self.left = None
        self.right = None

def insert(root, key):
    if root is None:
        return Node(key)
    node = root
    while True:
        if key < node.key:
            if node.left is None:
                node.left = Node(key)
                break
            node = node.left
        elif key > node.key:
            if node.right is None:
                node.right = Node(key)
                break
            node = node.right
        else:
            break
    return root

def find_depth(root, key):
    depth = 0
    node = root
    while not node is None:
        if key == node.key:
            return depth
        if key < node.key:
            node = node.left
        else:
            node = node.right
        depth = depth + 1
    return -1

root = None
x = 3
for i in range(200):
    x = (x * 1103515245 + 12345) % 2147483648
    root = insert(root, x % 511)
found = 0
for i in range(200):
    if find_depth(root, i) >= 0:
        found = found + 1
print(found)
""")

_register("tagcloud", """
words = ["web", "cloud", "data", "code", "app", "test", "node", "byte"]
freq = {}
x = 5
for i in range(400):
    x = (x * 1103515245 + 12345) % 2147483648
    word = words[x % 8]
    freq[word] = freq.get(word, 0) + 1
parts = []
for w in sorted(freq.keys()):
    parts.append(w + ":" + str(freq[w]))
cloud = ",".join(parts)
print(str(len(cloud)) + " " + str(freq["data"]))
""")

_register("towers.c", """
moves = []

def hanoi(n, src, dst, via):
    if n == 0:
        return 0
    hanoi(n - 1, src, via, dst)
    moves.append((src, dst))
    hanoi(n - 1, via, dst, src)
    return 0

hanoi(7, 0, 2, 1)
total = 0
for m in moves:
    a, b = m
    total = total + a * 3 + b
print(str(len(moves)) + " " + str(total))
""")

_register("typescript", """
def lex(src):
    tokens = []
    i = 0
    n = len(src)
    while i < n:
        ch = src[i]
        if ch == " ":
            i = i + 1
        elif ch == ":" or ch == "=" or ch == ";":
            tokens.append(ch)
            i = i + 1
        else:
            j = i
            while j < n and src[j] != " " and src[j] != ":" and \\
                    src[j] != "=" and src[j] != ";":
                j = j + 1
            tokens.append(src[i:j])
            i = j
    return tokens

src = "let x : number = 42 ; let s : string = hello ; " + \\
      "function f : void ;"
total = 0
for rep in range(20):
    tokens = lex(src)
    typed = 0
    for t in tokens:
        if t == ":":
            typed = typed + 1
    total = total + len(tokens) + typed
print(total)
""")

_register("zlib", """
def inflate(data):
    out = []
    i = 0
    while i < len(data):
        b = data[i]
        if b < 128:
            out.append(b)
            i = i + 1
        else:
            count = b - 126
            if len(out) > 0:
                last = out[len(out) - 1]
            else:
                last = 0
            for c in range(count):
                out.append(last)
            i = i + 1
    return out

data = []
x = 17
for i in range(500):
    x = (x * 1103515245 + 12345) % 2147483648
    data.append(x % 256)
out = inflate(data)
total = 0
for v in out:
    total = total + v
print(str(len(out)) + " " + str(total % 100000))
""")

#: The JetStream-analog suite (paper Section III: 37 benchmarks).
JS_SUITE = tuple(sorted(_SOURCES))


def js_source(name: str) -> str:
    """Source text of one JetStream-analog workload."""
    source = _SOURCES.get(name)
    if source is None:
        raise WorkloadError(
            f"unknown JS workload {name!r}; known: {', '.join(JS_SUITE)}")
    return source
