"""V8-analog JavaScript runtime."""

from .runtime import V8VM, run_v8

__all__ = ["V8VM", "run_v8"]
