"""V8-analog runtime: hidden-class inline caches + method JIT.

The paper uses Google V8 4.2 to show that its Python findings — C
function call overhead (Figure 6), memory-system sensitivity (Figure 9),
and the nursery/cache trade-off (Figure 16) — generalize to other
JIT-based dynamic-language run-times.

Modeling choice (documented in DESIGN.md): JavaScript and MiniPy are
close enough at the bytecode level that the V8 model executes the same
guest IR with a distinctly V8-flavored cost profile:

* property access goes through *hidden-class inline caches* (a map check
  plus a fixed-offset load) instead of dictionary lookups;
* the optimizing compiler is method-oriented: functions get hot quickly
  and whole-function traces are preferred over loop traces;
* the generational GC is the same scavenger design PyPy uses, which both
  engines share in spirit (V8's new space is a copying scavenger too).
"""

from __future__ import annotations

from ...categories import OverheadCategory
from ...config import RuntimeConfig, v8_runtime
from ...errors import GuestNameError
from ...frontend.compiler import Program
from ...host.address_space import AddressSpace
from ...host.machine import HostMachine
from ...objects.model import PyBoundMethod, PyInstance
from ...telemetry import TELEMETRY
from ..base import _NEXT, Frame  # type: ignore[attr-defined]
from ..stablehash import stable_hash
from ..pypy.interp import PyPyVM

_NAME = int(OverheadCategory.NAME_RESOLUTION)
_TYPE = int(OverheadCategory.TYPE_CHECK)


class V8VM(PyPyVM):
    """V8 4.2 analog built on the generational-GC/JIT substrate."""

    runtime_name = "v8"
    refcounting = False

    def __init__(self, machine: HostMachine, program: Program,
                 config: RuntimeConfig | None = None) -> None:
        if config is None:
            config = v8_runtime()
        super().__init__(machine, program, config)
        self.s_ic = machine.site("v8.inline_cache")

    # ------------------------------------------------------------------
    # Hidden-class inline caches
    # ------------------------------------------------------------------

    def _emit_ic_hit(self, obj) -> None:
        """Monomorphic IC: load the map, compare, load the slot."""
        m = self.machine
        m.load(self.s_ic, _TYPE, obj.addr)           # hidden class (map)
        m.branch(self.s_ic + 4, _TYPE, taken=False)  # map check guard
        m.load(self.s_ic + 8, _NAME, obj.addr + 16)  # fixed-offset slot
        if TELEMETRY.enabled:
            TELEMETRY.metrics.counter("v8.ic.hit").inc()

    def _note_ic_generic(self, name: str) -> None:
        """A non-instance receiver fell back to the megamorphic path."""
        if TELEMETRY.enabled:
            TELEMETRY.metrics.counter("v8.ic.megamorphic").inc()
            TELEMETRY.events.emit("v8.ic.megamorphic", name=name)

    def lookup_global(self, name: str):
        """Globals resolve through a global-property cell IC."""
        m = self.machine
        m.origin = m.site("ceval.handler.LOAD_GLOBAL")
        m.load(self.s_ic + 12, _NAME,
               m.space.vm_data.base + 0x1000 + (stable_hash(name) & 0x3FF8))
        m.branch(self.s_ic + 16, _NAME, taken=False)
        obj = self.globals.get(name)
        if obj is not None:
            return obj
        obj = self.builtins.get(name)
        if obj is None:
            raise GuestNameError(f"name {name!r} is not defined")
        return obj

    def op_load_attr(self, frame: Frame, arg: int) -> int:
        name = frame.code.names[arg]
        obj = self.emit_pop(frame)
        if isinstance(obj, PyInstance):
            self._emit_ic_hit(obj)
            attr = obj.attrs.get(name)
            if attr is not None:
                self.emit_push(frame, attr)
                return _NEXT
            func = obj.cls.methods.get(name)
            if func is None:
                raise GuestNameError(
                    f"{obj.cls.name!r} object has no attribute {name!r}")
            method = PyBoundMethod(obj, func)
            self.alloc_object(method)
            self.emit_push(frame, method)
            return _NEXT
        # Non-instance receivers: restore the stack and use the generic
        # (megamorphic) path of the base handler.
        self._note_ic_generic(name)
        self.emit_push(frame, obj)
        return super().op_load_attr(frame, arg)

    def op_store_attr(self, frame: Frame, arg: int) -> int:
        name = frame.code.names[arg]
        obj = self.emit_pop(frame)
        value = self.emit_pop(frame)
        if isinstance(obj, PyInstance):
            self._emit_ic_hit(obj)
            self.emit_write_barrier(obj)
            self.machine.store(self.s_ic + 20, _NAME, obj.addr + 24)
            obj.attrs[name] = value
            return _NEXT
        # Restore the stack and defer to the generic handler.
        self._note_ic_generic(name)
        self.emit_push(frame, value)
        self.emit_push(frame, obj)
        return super().op_store_attr(frame, arg)


def run_v8(program: Program, config: RuntimeConfig | None = None,
           machine: HostMachine | None = None,
           max_instructions: int = 200_000_000):
    """Convenience: run ``program`` on a fresh V8-analog runtime."""
    if config is None:
        config = v8_runtime()
    if machine is None:
        space = AddressSpace(nursery_size=config.gc.nursery_size)
        machine = HostMachine(space, max_instructions=max_instructions)
    vm = V8VM(machine, program, config)
    vm.run()
    return vm, machine
