"""CPython-2.7-model runtime: reference counting + freelist allocator.

This is the paper's baseline interpreter. Its memory-management signature
is what Section V-A observes: freed blocks are recycled LIFO by the
``obmalloc``-style freelist, so the hot allocation working set stays tiny
and the runtime performs well even with small caches.
"""

from __future__ import annotations

from ..categories import OverheadCategory
from ..frontend.compiler import Program
from ..host.address_space import AddressSpace, FreelistAllocator
from ..host.machine import HostMachine
from ..objects.model import GuestObject, PyDict, PyList
from ..telemetry import TELEMETRY
from .base import BaseVM, Frame

_ALLOC = int(OverheadCategory.OBJECT_ALLOCATION)
_GC = int(OverheadCategory.GARBAGE_COLLECTION)
_FUNC_SETUP = int(OverheadCategory.FUNCTION_SETUP_CLEANUP)

#: Sentinel refcount marking an object whose storage was already freed.
_FREED = -(1 << 40)

#: Refcount above which an object is treated as immortal.
_IMMORTAL = 1 << 29

#: Dealloc cascades at least this long are worth a telemetry event
#: (container teardown bursts the paper's allocation category captures).
_CASCADE_EVENT_THRESHOLD = 16


class CPythonVM(BaseVM):
    """Interpreter-only runtime with CPython-style memory management."""

    runtime_name = "cpython"
    refcounting = True

    def __init__(self, machine: HostMachine, program: Program, *,
                 recycle_freelist: bool = True,
                 global_cache: bool = False) -> None:
        self.allocator = FreelistAllocator(machine.space.heap,
                                           recycle=recycle_freelist)
        super().__init__(machine, program)
        self.global_cache_enabled = global_cache
        self._s_malloc = machine.site("obmalloc.pool")
        self._s_free = machine.site("obmalloc.free")

    # ------------------------------------------------------------------
    # Allocation
    # ------------------------------------------------------------------

    def alloc_object(self, obj: GuestObject, category: int = _ALLOC,
                     ) -> GuestObject:
        size = obj.size_bytes()
        obj.addr = self._malloc(size, category)
        m = self.machine
        # Initialize the header: type pointer and refcount.
        m.store(self.s_alloc + 4, category, obj.addr)
        m.store(self.s_alloc + 8, category, obj.addr + 8)
        self.stats.allocations += 1
        self.stats.allocated_bytes += size
        return obj

    def alloc_buffer(self, nbytes: int, category: int = _ALLOC) -> int:
        return self._malloc(nbytes, category)

    def _malloc(self, size: int, category: int) -> int:
        m = self.machine
        if TELEMETRY.enabled:
            TELEMETRY.metrics.counter("cpython.mallocs").inc()
        with m.c_call("obmalloc.call_malloc", "obmalloc.malloc",
                      indirect=False, args=1, saves=1):
            # Freelist pop: load head, load next, store head.
            m.load(self._s_malloc, category,
                   m.space.vm_data.base + 0x4000 + (size & 0x1F8))
            m.alu(self._s_malloc + 8, category, n=2)
            addr = self.allocator.alloc(size)
            m.load(self._s_malloc + 12, category, addr)
            m.store(self._s_malloc + 16, category,
                    m.space.vm_data.base + 0x4000 + (size & 0x1F8))
        return addr

    def free_buffer(self, addr: int, nbytes: int) -> None:
        self._free(addr, nbytes, _ALLOC)

    def _free(self, addr: int, size: int, category: int) -> None:
        m = self.machine
        if TELEMETRY.enabled:
            TELEMETRY.metrics.counter("cpython.frees").inc()
        with m.c_call("obmalloc.call_free", "obmalloc.free_fn",
                      indirect=False, args=1, saves=1):
            # Freelist push: store next pointer into the block, update head.
            m.store(self._s_free, category, addr)
            m.store(self._s_free + 4, category,
                    m.space.vm_data.base + 0x4000 + (size & 0x1F8))
        self.allocator.free(addr, size)

    # ------------------------------------------------------------------
    # Reference counting
    # ------------------------------------------------------------------

    def retain(self, obj: GuestObject) -> None:
        if obj.refcount < _IMMORTAL and obj.refcount != _FREED:
            obj.refcount += 1

    def release(self, obj: GuestObject) -> None:
        if obj.refcount >= _IMMORTAL or obj.refcount == _FREED:
            return
        obj.refcount -= 1
        if obj.refcount <= 0:
            self._dealloc(obj)

    def _dealloc(self, root: GuestObject) -> None:
        """Free an object; children are released iteratively.

        Container deallocation decrefs every element — the O(n) teardown
        cost the paper's object allocation category captures.
        """
        from ..objects.model import gc_children
        worklist = [root]
        m = self.machine
        freed_objects = 0
        freed_bytes = 0
        while worklist:
            obj = worklist.pop()
            if obj.refcount == _FREED or obj.refcount >= _IMMORTAL:
                continue
            obj.refcount = _FREED
            for child in gc_children(obj):
                if child.refcount >= _IMMORTAL or child.refcount == _FREED:
                    continue
                m.load(self.s_gc + 36, _GC, child.addr)
                m.store(self.s_gc + 40, _GC, child.addr)
                child.refcount -= 1
                if child.refcount <= 0:
                    worklist.append(child)
            if isinstance(obj, PyList) and obj.buffer_addr:
                self._free(obj.buffer_addr, obj.buffer_bytes(), _GC)
                freed_bytes += obj.buffer_bytes()
            elif isinstance(obj, PyDict) and obj.table_addr:
                self._free(obj.table_addr, obj.table_bytes(), _GC)
                freed_bytes += obj.table_bytes()
            self._free(obj.addr, obj.size_bytes(), _GC)
            freed_objects += 1
            freed_bytes += obj.size_bytes()
        if freed_objects >= _CASCADE_EVENT_THRESHOLD and TELEMETRY.enabled:
            TELEMETRY.events.emit("cpython.dealloc_cascade",
                                  objects=freed_objects,
                                  bytes=freed_bytes)

    # ------------------------------------------------------------------
    # Frames
    # ------------------------------------------------------------------

    def alloc_frame(self, frame: Frame) -> int:
        m = self.machine
        size = frame.size_bytes()
        addr = self._malloc(size, _FUNC_SETUP)
        # Zero the fast-locals area the way frame_alloc does.
        m.touch_range(self.s_funcsetup + 28, _FUNC_SETUP,
                      addr + 64, 8 * max(1, len(frame.locals)), write=True)
        return addr

    def free_frame(self, frame: Frame) -> None:
        self._free(frame.addr, frame.size_bytes(), _FUNC_SETUP)


def run_cpython(program: Program, machine: HostMachine | None = None,
                max_instructions: int = 200_000_000):
    """Convenience: run ``program`` on a fresh CPython-model runtime.

    Returns ``(vm, machine)`` after the program completes.
    """
    if machine is None:
        machine = HostMachine(AddressSpace(),
                              max_instructions=max_instructions)
    vm = CPythonVM(machine, program)
    vm.run()
    return vm, machine
