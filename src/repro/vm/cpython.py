"""CPython-2.7-model runtime: reference counting + freelist allocator.

This is the paper's baseline interpreter. Its memory-management signature
is what Section V-A observes: freed blocks are recycled LIFO by the
``obmalloc``-style freelist, so the hot allocation working set stays tiny
and the runtime performs well even with small caches.
"""

from __future__ import annotations

from ..categories import OverheadCategory
from ..frontend.compiler import Program
from ..host.address_space import AddressSpace, FreelistAllocator
from ..host.machine import HostMachine
from ..objects.model import GuestObject, PyDict, PyList, gc_children
from ..telemetry import TELEMETRY
from .base import BaseVM, Frame

_ALLOC = int(OverheadCategory.OBJECT_ALLOCATION)
_GC = int(OverheadCategory.GARBAGE_COLLECTION)
_FUNC_SETUP = int(OverheadCategory.FUNCTION_SETUP_CLEANUP)

#: Sentinel refcount marking an object whose storage was already freed.
_FREED = -(1 << 40)

#: Refcount above which an object is treated as immortal.
_IMMORTAL = 1 << 29

#: Dealloc cascades at least this long are worth a telemetry event
#: (container teardown bursts the paper's allocation category captures).
_CASCADE_EVENT_THRESHOLD = 16


class CPythonVM(BaseVM):
    """Interpreter-only runtime with CPython-style memory management."""

    runtime_name = "cpython"
    refcounting = True

    def __init__(self, machine: HostMachine, program: Program, *,
                 recycle_freelist: bool = True,
                 global_cache: bool = False) -> None:
        self.allocator = FreelistAllocator(machine.space.heap,
                                           recycle=recycle_freelist)
        super().__init__(machine, program)
        self.global_cache_enabled = global_cache
        self._s_malloc = machine.site("obmalloc.pool")
        self._s_free = machine.site("obmalloc.free")

    # ------------------------------------------------------------------
    # Allocation
    # ------------------------------------------------------------------

    def alloc_object(self, obj: GuestObject, category: int = _ALLOC,
                     ) -> GuestObject:
        size = obj.size_bytes()
        obj.addr = self._malloc(size, category)
        # Initialize the header: type pointer and refcount.
        self._rows_alloc_header(obj.addr, category)
        self.stats.allocations += 1
        self.stats.allocated_bytes += size
        return obj

    def _rows_alloc_header(self, addr: int, category: int) -> None:
        m = self.machine
        m.store(self.s_alloc + 4, category, addr)
        m.store(self.s_alloc + 8, category, addr + 8)

    def alloc_buffer(self, nbytes: int, category: int = _ALLOC) -> int:
        return self._malloc(nbytes, category)

    def _rows_malloc(self, head: int, addr: int, category: int) -> None:
        m = self.machine
        with m.c_call("obmalloc.call_malloc", "obmalloc.malloc",
                      indirect=False, args=1, saves=1):
            # Freelist pop: load head, load next, store head.
            m.load(self._s_malloc, category, head)
            m.alu(self._s_malloc + 8, category, n=2)
            m.load(self._s_malloc + 12, category, addr)
            m.store(self._s_malloc + 16, category, head)

    def _malloc(self, size: int, category: int) -> int:
        m = self.machine
        if TELEMETRY.enabled:
            TELEMETRY.metrics.counter("cpython.mallocs").inc()
        addr = self.allocator.alloc(size)
        self._rows_malloc(m.space.vm_data.base + 0x4000 + (size & 0x1F8),
                          addr, category)
        return addr

    def free_buffer(self, addr: int, nbytes: int) -> None:
        self._free(addr, nbytes, _ALLOC)

    def _rows_free(self, addr: int, head: int, category: int) -> None:
        m = self.machine
        with m.c_call("obmalloc.call_free", "obmalloc.free_fn",
                      indirect=False, args=1, saves=1):
            # Freelist push: store next pointer into the block, update head.
            m.store(self._s_free, category, addr)
            m.store(self._s_free + 4, category, head)

    def _free(self, addr: int, size: int, category: int) -> None:
        m = self.machine
        if TELEMETRY.enabled:
            TELEMETRY.metrics.counter("cpython.frees").inc()
        self._rows_free(addr,
                        m.space.vm_data.base + 0x4000 + (size & 0x1F8),
                        category)
        self.allocator.free(addr, size)

    # ------------------------------------------------------------------
    # Burst fusions: allocator paths
    # ------------------------------------------------------------------

    # The malloc/free/alloc_object emission bodies are linear in
    # ``(head, addr)`` for a fixed category, so each collapses to one
    # queued template per category. The allocator bookkeeping happens
    # before emission (it writes no rows), which keeps the scalar and
    # fused row streams identical.

    def _bind_burst_emitters(self) -> None:
        super()._bind_burst_emitters()
        cls = type(self)
        self._t_malloc: dict[int, tuple | bool] = {}
        self._t_free: dict[int, tuple | bool] = {}
        self._t_alloc_obj: dict[int, tuple | bool] = {}
        self._t_gc_child = None
        if cls._malloc is CPythonVM._malloc:
            self._malloc = self._burst_malloc
            if cls.alloc_object is CPythonVM.alloc_object:
                self.alloc_object = self._burst_alloc_object
        if cls._free is CPythonVM._free:
            self._free = self._burst_free
        if cls._emit_gc_child is CPythonVM._emit_gc_child:
            self._emit_gc_child = self._burst_gc_child

    def _burst_malloc(self, size: int, category: int) -> int:
        m = self.machine
        if TELEMETRY.enabled:
            TELEMETRY.metrics.counter("cpython.mallocs").inc()
        head = m.space.vm_data.base + 0x4000 + (size & 0x1F8)
        addr = self.allocator.alloc(size)
        if m.suppressed or m.clib_depth:
            self._rows_malloc(head, addr, category)
            return addr
        entry = self._t_malloc.get(category)
        if entry is None:
            entry = self._t_malloc[category] = self._record_entry(
                lambda v: self._rows_malloc(v[0], v[1], category),
                [head, addr], ("origin", "sp"))
        if entry is False:
            self._rows_malloc(head, addr, category)
            return addr
        self._q_append(entry[0])
        self._q_extend((head, addr, m.origin, m.sp))
        return addr

    def _burst_free(self, addr: int, size: int, category: int) -> None:
        m = self.machine
        if TELEMETRY.enabled:
            TELEMETRY.metrics.counter("cpython.frees").inc()
        head = m.space.vm_data.base + 0x4000 + (size & 0x1F8)
        if m.suppressed or m.clib_depth:
            self._rows_free(addr, head, category)
        else:
            entry = self._t_free.get(category)
            if entry is None:
                entry = self._t_free[category] = self._record_entry(
                    lambda v: self._rows_free(v[0], v[1], category),
                    [addr, head], ("origin", "sp"))
            if entry is False:
                self._rows_free(addr, head, category)
            else:
                self._q_append(entry[0])
                self._q_extend((addr, head, m.origin, m.sp))
        self.allocator.free(addr, size)

    def _rows_alloc_object(self, head: int, addr: int,
                           category: int) -> None:
        self._rows_malloc(head, addr, category)
        self._rows_alloc_header(addr, category)

    def _burst_alloc_object(self, obj: GuestObject,
                            category: int = _ALLOC) -> GuestObject:
        m = self.machine
        size = obj.size_bytes()
        if TELEMETRY.enabled:
            TELEMETRY.metrics.counter("cpython.mallocs").inc()
        head = m.space.vm_data.base + 0x4000 + (size & 0x1F8)
        addr = obj.addr = self.allocator.alloc(size)
        self.stats.allocations += 1
        self.stats.allocated_bytes += size
        if m.suppressed or m.clib_depth:
            self._rows_alloc_object(head, addr, category)
            return obj
        entry = self._t_alloc_obj.get(category)
        if entry is None:
            entry = self._t_alloc_obj[category] = self._record_entry(
                lambda v: self._rows_alloc_object(v[0], v[1], category),
                [head, addr], ("origin", "sp"))
        if entry is False:
            self._rows_alloc_object(head, addr, category)
            return obj
        self._q_append(entry[0])
        self._q_extend((head, addr, m.origin, m.sp))
        return obj

    def _burst_gc_child(self, child_addr: int) -> None:
        m = self.machine
        if m.suppressed or m.clib_depth:
            return CPythonVM._emit_gc_child(self, child_addr)
        entry = self._t_gc_child
        if entry is None:
            entry = self._t_gc_child = self._record_entry(
                lambda v: CPythonVM._emit_gc_child(self, v[0]),
                [child_addr], ("origin",))
        if entry is False:
            return CPythonVM._emit_gc_child(self, child_addr)
        self._q_append(entry[0])
        self._q_extend((child_addr, m.origin))

    # ------------------------------------------------------------------
    # Reference counting
    # ------------------------------------------------------------------

    def retain(self, obj: GuestObject) -> None:
        if obj.refcount < _IMMORTAL and obj.refcount != _FREED:
            obj.refcount += 1

    def release(self, obj: GuestObject) -> None:
        if obj.refcount >= _IMMORTAL or obj.refcount == _FREED:
            return
        obj.refcount -= 1
        if obj.refcount <= 0:
            self._dealloc(obj)

    def _dealloc(self, root: GuestObject) -> None:
        """Free an object; children are released iteratively.

        Container deallocation decrefs every element — the O(n) teardown
        cost the paper's object allocation category captures.
        """
        worklist = [root]
        freed_objects = 0
        freed_bytes = 0
        while worklist:
            obj = worklist.pop()
            if obj.refcount == _FREED or obj.refcount >= _IMMORTAL:
                continue
            obj.refcount = _FREED
            for child in gc_children(obj):
                if child.refcount >= _IMMORTAL or child.refcount == _FREED:
                    continue
                self._emit_gc_child(child.addr)
                child.refcount -= 1
                if child.refcount <= 0:
                    worklist.append(child)
            if isinstance(obj, PyList) and obj.buffer_addr:
                self._free(obj.buffer_addr, obj.buffer_bytes(), _GC)
                freed_bytes += obj.buffer_bytes()
            elif isinstance(obj, PyDict) and obj.table_addr:
                self._free(obj.table_addr, obj.table_bytes(), _GC)
                freed_bytes += obj.table_bytes()
            self._free(obj.addr, obj.size_bytes(), _GC)
            freed_objects += 1
            freed_bytes += obj.size_bytes()
        if freed_objects >= _CASCADE_EVENT_THRESHOLD and TELEMETRY.enabled:
            TELEMETRY.events.emit("cpython.dealloc_cascade",
                                  objects=freed_objects,
                                  bytes=freed_bytes)

    def _emit_gc_child(self, child_addr: int) -> None:
        """Visit one contained reference during container teardown."""
        m = self.machine
        m.load(self.s_gc + 36, _GC, child_addr)
        m.store(self.s_gc + 40, _GC, child_addr)

    # ------------------------------------------------------------------
    # Frames
    # ------------------------------------------------------------------

    def alloc_frame(self, frame: Frame) -> int:
        m = self.machine
        size = frame.size_bytes()
        addr = self._malloc(size, _FUNC_SETUP)
        # Zero the fast-locals area the way frame_alloc does.
        m.touch_range(self.s_funcsetup + 28, _FUNC_SETUP,
                      addr + 64, 8 * max(1, len(frame.locals)), write=True)
        return addr

    def free_frame(self, frame: Frame) -> None:
        self._free(frame.addr, frame.size_bytes(), _FUNC_SETUP)


def run_cpython(program: Program, machine: HostMachine | None = None,
                max_instructions: int = 200_000_000):
    """Convenience: run ``program`` on a fresh CPython-model runtime.

    Returns ``(vm, machine)`` after the program completes.
    """
    if machine is None:
        machine = HostMachine(AddressSpace(),
                              max_instructions=max_instructions)
    vm = CPythonVM(machine, program)
    vm.run()
    return vm, machine
