"""Modeled run-times: CPython-style interpreter, PyPy analog, V8 analog.

Each run-time executes MiniPy (or, for V8, MiniJS-style workloads)
semantically in ordinary Python while emitting a categorized host
instruction stream through :class:`repro.host.HostMachine`. The stream is
what the pintool and microarchitecture models consume.
"""

from .base import BaseVM, Frame, RunStats
from .cpython import CPythonVM
from .pypy import PyPyVM

__all__ = ["BaseVM", "Frame", "RunStats", "CPythonVM", "PyPyVM"]
