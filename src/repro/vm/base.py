"""Shared interpreter core for the modeled run-times.

``BaseVM`` implements the complete MiniPy semantics plus the *emission
choreography*: for every bytecode it emits the host instructions a
CPython-like interpreter would execute, each tagged with its Table II
overhead category. Memory-management behavior (refcounting vs.
generational GC) is delegated to hooks that :class:`~repro.vm.cpython.
CPythonVM` and the PyPy model override.

The choreography is the calibration surface of the whole reproduction:
dispatch reads and decodes the bytecode and jumps indirectly through the
handler table; stack traffic goes to real simulated frame addresses;
binary operators type-check, resolve a function pointer, make an indirect
C call, unbox, execute, error-check, box, and adjust reference counts —
the same structural work Section IV attributes.
"""

from __future__ import annotations

from ..categories import OverheadCategory
from ..errors import (
    GuestIndexError,
    GuestKeyError,
    GuestNameError,
    GuestTypeError,
    GuestValueError,
    GuestZeroDivisionError,
    VMError,
)
from ..frontend.bytecode import COMPARE_OPS, CodeObject, Op
from ..frontend.compiler import Program
from ..host.burst import FLUSH_ENTRIES as _FLUSH_ENTRIES
from ..host.machine import HostMachine
from .stablehash import stable_hash
from ..objects.model import (
    FALSE,
    NONE,
    TRUE,
    GuestObject,
    PyBool,
    PyBoundMethod,
    PyBuiltin,
    PyClass,
    PyDict,
    PyFloat,
    PyFunc,
    PyInstance,
    PyInt,
    PyIterator,
    PyList,
    PyNone,
    PyRange,
    PySlice,
    PyStr,
    PyTuple,
    raw_key,
)

_C = OverheadCategory
_DISPATCH = int(_C.DISPATCH)
_STACK = int(_C.STACK)
_CONST = int(_C.CONST_LOAD)
_TYPE = int(_C.TYPE_CHECK)
_BOX = int(_C.BOXING_UNBOXING)
_NAME = int(_C.NAME_RESOLUTION)
_FUNC_RES = int(_C.FUNCTION_RESOLUTION)
_FUNC_SETUP = int(_C.FUNCTION_SETUP_CLEANUP)
_ERROR = int(_C.ERROR_CHECK)
_GC = int(_C.GARBAGE_COLLECTION)
_RICH = int(_C.RICH_CONTROL_FLOW)
_ALLOC = int(_C.OBJECT_ALLOCATION)
_REG = int(_C.REG_TRANSFER)
_EXEC = int(_C.EXECUTE)
_UNRESOLVED = int(_C.UNRESOLVED)

#: Small integers CPython caches and never allocates.
SMALL_INT_MIN = -5
SMALL_INT_MAX = 256

_FRAME_HEADER = 64
_FRAME_STACK_SLOTS = 48

#: Control signals returned by handlers to the frame loop.
_NEXT = 0
_FRAME_PUSHED = 1
_FRAME_RETURNED = 2

#: Opcode ints for the fused burst handlers (dict lookups off the hot path).
_OP_LOAD_FAST = int(Op.LOAD_FAST)
_OP_STORE_FAST = int(Op.STORE_FAST)
_OP_LOAD_CONST = int(Op.LOAD_CONST)
_OP_LOAD_ATTR = int(Op.LOAD_ATTR)
_OP_STORE_ATTR = int(Op.STORE_ATTR)
_OP_FOR_ITER = int(Op.FOR_ITER)
_OP_POP_TOP = int(Op.POP_TOP)
_OP_JUMP_ABSOLUTE = int(Op.JUMP_ABSOLUTE)
_OP_LOAD_METHOD = int(Op.LOAD_METHOD)
_OP_CALL_METHOD = int(Op.CALL_METHOD)
_OP_CALL_FUNCTION = int(Op.CALL_FUNCTION)
_OP_LOAD_GLOBAL = int(Op.LOAD_GLOBAL)
_OP_RETURN_VALUE = int(Op.RETURN_VALUE)
_OP_BINARY_SUBSCR = int(Op.BINARY_SUBSCR)


class Frame:
    """One guest call frame: locals, value stack, block stack."""

    __slots__ = ("code", "pc", "stack", "locals", "blocks", "addr",
                 "return_to", "bc_base")

    def __init__(self, code: CodeObject, addr: int) -> None:
        self.code = code
        self.pc = 0
        self.stack: list[GuestObject] = []
        self.locals: list[GuestObject | None] = [None] * len(code.varnames)
        self.blocks: list[int] = []
        self.addr = addr
        #: Index in the parent's stack where the return value lands; kept
        #: implicit (parent stack append), stored for diagnostics only.
        self.return_to = -1

    def size_bytes(self) -> int:
        return (_FRAME_HEADER
                + 8 * (len(self.locals) + _FRAME_STACK_SLOTS))

    def stack_addr(self, depth_from_top: int = 0) -> int:
        index = len(self.stack) - 1 - depth_from_top
        return self.addr + _FRAME_HEADER + 8 * (index % _FRAME_STACK_SLOTS)

    def local_addr(self, slot: int) -> int:
        return (self.addr + _FRAME_HEADER + 8 * _FRAME_STACK_SLOTS
                + 8 * slot)


class RunStats:
    """Counters a run accumulates for the analysis layer."""

    __slots__ = ("bytecodes", "guest_calls", "c_library_calls",
                 "allocations", "allocated_bytes", "minor_gcs", "major_gcs",
                 "gc_copied_bytes", "deopts", "traces_compiled",
                 "compiled_ops", "bridges_compiled")

    def __init__(self) -> None:
        self.bytecodes = 0
        self.guest_calls = 0
        self.c_library_calls = 0
        self.allocations = 0
        self.allocated_bytes = 0
        self.minor_gcs = 0
        self.major_gcs = 0
        self.gc_copied_bytes = 0
        self.deopts = 0
        self.traces_compiled = 0
        self.compiled_ops = 0
        self.bridges_compiled = 0

    def as_dict(self) -> dict[str, int]:
        """JSON-ready view (telemetry manifests, reports)."""
        return {name: getattr(self, name) for name in self.__slots__}


class BaseVM:
    """MiniPy interpreter with categorized host-instruction emission."""

    runtime_name = "base"
    #: True for runtimes that maintain per-object reference counts
    #: (CPython model); the PyPy model relies on tracing GC instead.
    refcounting = True

    def __init__(self, machine: HostMachine, program: Program) -> None:
        self.machine = machine
        self.program = program
        self.stats = RunStats()
        #: Optional optimization (paper ref [20]): cache global lookups
        #: per call site instead of probing the dict every time.
        self.global_cache_enabled = False
        #: Per-call plan: (discard_return, value_to_push_instead).
        self._return_plans: list[tuple[bool, GuestObject | None]] = []
        self._module_result: GuestObject | None = None
        self.globals: dict[str, GuestObject] = {}
        self.frames: list[Frame] = []
        self._small_ints: dict[int, PyInt] = {}
        self._code_addrs: dict[int, int] = {}
        self._interned_strs: dict[str, PyStr] = {}
        self._init_sites()
        self._init_immortals()
        self._handlers = self._build_handler_table()
        if machine.backend == "burst":
            self._bind_burst_emitters()
        from .builtins import install_builtins
        self.builtins: dict[str, PyBuiltin] = {}
        install_builtins(self)
        self._install_program()

    # ------------------------------------------------------------------
    # Setup
    # ------------------------------------------------------------------

    def _init_sites(self) -> None:
        m = self.machine
        self.s_dispatch = m.site("ceval.dispatch")
        self.s_regxfer = m.site("ceval.reg_transfer")
        self.s_stack = m.site("ceval.stack")
        self.s_const = m.site("ceval.const_load")
        self.s_type = m.site("ceval.type_check")
        self.s_box = m.site("ceval.boxing")
        self.s_err = m.site("ceval.error_check")
        self.s_gc = m.site("gcmodule.refcount")
        self.s_rich = m.site("ceval.rich_control")
        self.s_name = m.site("ceval.name_resolution")
        self.s_funcres = m.site("ceval.function_resolution")
        self.s_funcsetup = m.site("ceval.function_setup")
        self.s_alloc = m.site("obmalloc.alloc")
        self.s_exec = m.site("ceval.execute")
        self.s_dict_lookup = m.site("dictobject.lookdict")
        self._handler_sites = {
            op: m.site(f"ceval.handler.{op.name}") for op in Op
        }
        # Pre-intern every remaining static interpreter site so PCs are
        # identical for every guest program, the way a compiled
        # interpreter binary's addresses are (the annotate-once reuse of
        # Section IV-B.3 depends on this).
        for op_name in self._NUMERIC_OPS.values():
            m.site(f"ceval.call_binop_{op_name}")
            m.site(f"abstract.binary_{op_name}")
        for name in ("ceval.call_lookdict", "ceval.call_cmp",
                     "object.richcompare", "ceval.call_getiter",
                     "object.getiter", "ceval.call_iternext",
                     "object.iternext", "ceval.call_getitem",
                     "abstract.getitem", "ceval.call_setitem",
                     "abstract.setitem", "ceval.call_cfunction",
                     "ceval.handler.BINARY_SUBSCR.dict",
                     "ceval.handler.STORE_SUBSCR.dict",
                     "ceval.handler.COMPARE_OP.contains"):
            m.site(name)

    def _init_immortals(self) -> None:
        """Place singletons and caches in the VM data region."""
        space = self.machine.space
        # The singletons are module-global objects; restore their pristine
        # state (fresh address, unit refcount) for every VM so a run's
        # trace depends only on its own inputs. Carrying addr/refcount
        # over from a previous VM in the same process made the first run
        # lay out vm_data — and free objects at teardown — differently
        # from every later one, breaking byte-for-byte reproducibility
        # across processes and disk-cache hits.
        for obj in (NONE, TRUE, FALSE):
            obj.addr = space.vm_data.bump(obj.size_bytes())
            obj.refcount = 1
            obj.gc_age = 0
        for value in range(SMALL_INT_MIN, SMALL_INT_MAX + 1):
            boxed = PyInt(value)
            boxed.addr = space.vm_data.bump(boxed.size_bytes())
            self._small_ints[value] = boxed

    def _install_program(self) -> None:
        """Register compiled functions and classes as immortal globals."""
        for name, code in self.program.functions.items():
            func = PyFunc(code)
            self._make_immortal(func)
            self.globals[name] = func
        for name, spec in self.program.classes.items():
            methods = {}
            for method_name, code in spec.methods.items():
                func = PyFunc(code)
                self._make_immortal(func)
                methods[method_name] = func
            cls = PyClass(name, methods)
            self._make_immortal(cls)
            self.globals[name] = cls

    def _make_immortal(self, obj: GuestObject) -> None:
        obj.addr = self.machine.space.vm_data.bump(obj.size_bytes())
        obj.refcount = 1 << 30

    def code_addr(self, code: CodeObject) -> int:
        """Simulated address of a code object's bytecode array."""
        addr = self._code_addrs.get(id(code))
        if addr is None:
            size = 64 + 2 * len(code.ops) + 8 * len(code.consts)
            addr = self.machine.space.vm_data.bump(size)
            self._code_addrs[id(code)] = addr
        return addr

    def intern_str(self, value: str) -> PyStr:
        """Immortal interned string (names, const strings)."""
        obj = self._interned_strs.get(value)
        if obj is None:
            obj = PyStr(value)
            self._make_immortal(obj)
            self._interned_strs[value] = obj
        return obj

    # ------------------------------------------------------------------
    # Memory-management hooks (overridden per runtime)
    # ------------------------------------------------------------------

    def alloc_object(self, obj: GuestObject, category: int = _ALLOC,
                     ) -> GuestObject:
        """Assign a simulated address to ``obj`` and emit allocation work."""
        raise NotImplementedError

    def alloc_buffer(self, nbytes: int, category: int = _ALLOC) -> int:
        """Allocate an out-of-line buffer (list items, dict table)."""
        raise NotImplementedError

    def retain(self, obj: GuestObject) -> None:
        """Reference-count increment (CPython model) or no-op (PyPy)."""

    def release(self, obj: GuestObject) -> None:
        """Reference-count decrement, possibly freeing (CPython model)."""

    def gc_poll(self) -> None:
        """Give the collector a chance to run (PyPy model)."""

    # ------------------------------------------------------------------
    # Emission helpers (hot path)
    # ------------------------------------------------------------------

    # The hot helpers are split into *emission-only* ``_rows_*`` bodies
    # (pure trace writes, no semantic side effects) and thin public
    # wrappers that add the semantics (stack mutation, refcounting).
    # The scalar backend calls the rows bodies directly; the burst
    # backend records each body into a template at its first use (see
    # :mod:`repro.host.burst`) and thereafter enqueues a template id
    # plus the dynamic operands instead of emitting row by row. Because
    # both paths execute the *same* emission code — eagerly or at
    # record time — the resulting traces are bit-identical.

    def _rows_dispatch(self, op: int, bc_addr: int) -> None:
        m = self.machine
        handler = self._handler_sites[Op(op)]
        m.origin = handler
        m.load(self.s_dispatch, _DISPATCH, bc_addr, 2)
        m.alu(self.s_dispatch + 8, _DISPATCH, n=2)
        # Switch dispatch: bounds check plus indirect jump via jump table.
        m.branch(self.s_dispatch + 16, _DISPATCH, taken=False)
        m.indirect_branch(self.s_dispatch + 20, _DISPATCH, target=handler)
        # Residual handler work the annotation cannot attribute to any
        # overhead category; the paper's breakdown counts such
        # instructions as program execution (Section IV-B).
        m.alu(handler, _EXEC, n=4)

    def emit_dispatch(self, frame: Frame, op: int) -> None:
        self._rows_dispatch(
            op, self.code_addr(frame.code) + 2 * frame.pc)

    def _rows_push(self, slot_addr: int) -> None:
        m = self.machine
        m.alu(self.s_regxfer, _REG, n=1)
        m.store(self.s_stack, _STACK, slot_addr)
        m.alu(self.s_stack + 8, _STACK, n=1)

    def emit_push(self, frame: Frame, obj: GuestObject) -> None:
        frame.stack.append(obj)
        self._rows_push(frame.stack_addr(0))

    def _rows_pop(self, slot_addr: int) -> None:
        m = self.machine
        m.alu(self.s_regxfer, _REG, n=1)
        m.load(self.s_stack + 16, _STACK, slot_addr)
        m.alu(self.s_stack + 24, _STACK, n=1)

    def emit_pop(self, frame: Frame) -> GuestObject:
        self._rows_pop(frame.stack_addr(0))
        return frame.stack.pop()

    def _rows_peek(self, slot_addr: int) -> None:
        m = self.machine
        m.alu(self.s_regxfer, _REG, n=1)
        m.load(self.s_stack + 32, _STACK, slot_addr)

    def emit_peek(self, frame: Frame, depth: int = 0) -> GuestObject:
        self._rows_peek(frame.stack_addr(depth))
        return frame.stack[-1 - depth]

    def _rows_typecheck(self, obj_addr: int, n_branches: int) -> None:
        m = self.machine
        m.load(self.s_type, _TYPE, obj_addr)  # ob_type
        m.alu(self.s_type + 8, _TYPE, n=1)
        for i in range(n_branches):
            m.branch(self.s_type + 12 + 4 * i, _TYPE, taken=(i == 0))

    def emit_typecheck(self, obj: GuestObject, n_branches: int = 1) -> None:
        self._rows_typecheck(obj.addr, n_branches)

    def emit_unbox(self, obj: GuestObject) -> None:
        self.machine.load(self.s_box, _BOX, obj.addr + 16)

    def emit_box_store(self, obj: GuestObject) -> None:
        self.machine.store(self.s_box + 8, _BOX, obj.addr + 16)

    def _rows_error_check(self, taken: bool) -> None:
        m = self.machine
        m.alu(self.s_err, _ERROR, n=1)
        m.branch(self.s_err + 4, _ERROR, taken=taken)

    def emit_error_check(self, taken: bool = False) -> None:
        self._rows_error_check(taken)

    def _rows_incref(self, obj_addr: int) -> None:
        m = self.machine
        # Read-modify-write on ob_refcnt (one inc-to-memory on x86).
        m.alu(self.s_gc + 8, _GC, n=1)
        m.store(self.s_gc + 12, _GC, obj_addr)

    def emit_incref(self, obj: GuestObject) -> None:
        if not self.refcounting:
            return
        self._rows_incref(obj.addr)
        self.retain(obj)

    def _rows_decref(self, obj_addr: int) -> None:
        m = self.machine
        m.load(self.s_gc + 16, _GC, obj_addr)
        m.alu(self.s_gc + 24, _GC, n=1)
        m.store(self.s_gc + 28, _GC, obj_addr)
        m.branch(self.s_gc + 32, _GC, taken=False)

    def emit_decref(self, obj: GuestObject) -> None:
        if not self.refcounting:
            return
        self._rows_decref(obj.addr)
        self.release(obj)

    def emit_write_barrier(self, container: GuestObject) -> None:
        """Generational-GC write barrier; no-op under refcounting."""

    def _rows_execute_alu(self, n: int) -> None:
        self.machine.alu(self.s_exec, _EXEC, n=n)

    def emit_execute_alu(self, n: int = 1) -> None:
        self._rows_execute_alu(n)

    def _rows_dict_lookup(self, probe: int) -> None:
        m = self.machine
        # lookdict is reached through the dict's ma_lookup pointer.
        with m.c_call("ceval.call_lookdict", "dictobject.lookdict",
                      indirect=True, args=2, saves=2):
            m.alu(self.s_dict_lookup, _UNRESOLVED, n=3)  # hash mixing
            m.load(self.s_dict_lookup + 12, _UNRESOLVED, probe)
            m.alu(self.s_dict_lookup + 16, _UNRESOLVED, n=1)
            m.branch(self.s_dict_lookup + 20, _UNRESOLVED, taken=False)
            m.load(self.s_dict_lookup + 24, _UNRESOLVED, probe + 8)

    def dict_lookup_emit(self, d_table_addr: int, slot_hint: int) -> None:
        """The shared ``lookdict`` helper (function-granularity site).

        Emitted with the UNRESOLVED category: the pintool resolves it to
        NAME_RESOLUTION or EXECUTE based on the recorded origin PC, which
        is exactly the caller-dependent case Section IV-B describes.
        """
        self._rows_dict_lookup(d_table_addr + 24 * (slot_hint & 1023))

    # ------------------------------------------------------------------
    # Burst-backend emitters (bound as instance attributes at init)
    # ------------------------------------------------------------------

    def _bind_burst_emitters(self) -> None:
        """Shadow the hot emit helpers with burst-queueing versions.

        Only helpers the concrete VM class has *not* overridden are
        shadowed, so a runtime model that customizes an emitter keeps
        its behavior (and simply goes through the raw queue).
        """
        self._eng = self.machine._engine
        # The engine clears its queues in place, so the array objects —
        # and these bound methods — stay valid across flushes.
        self._q_order = self._eng.order
        self._q_append = self._eng.order.append
        self._q_extend = self._eng.dyn.extend
        self._q_dyn_append = self._eng.dyn.append
        self._t_dispatch: list = [None] * 96
        self._handler_site_by_op = [0] * 96
        for op, site in self._handler_sites.items():
            self._handler_site_by_op[int(op)] = site
        self._t_push = self._t_pop = self._t_peek = None
        self._t_incref = self._t_decref = None
        self._t_dict_lookup = None
        self._t_typecheck: dict[int, tuple | bool] = {}
        self._t_err: dict[bool, tuple | bool] = {}
        self._t_exec_alu: dict[int, tuple | bool] = {}
        fused_ok = True
        for name in ("emit_dispatch", "emit_push", "emit_pop",
                     "emit_peek", "emit_typecheck", "emit_error_check",
                     "emit_incref", "emit_decref", "emit_execute_alu",
                     "dict_lookup_emit"):
            if getattr(type(self), name) is getattr(BaseVM, name):
                setattr(self, name, getattr(self, "_burst_" + name))
            else:
                fused_ok = False
        # Fused whole-handler templates: the entire emission of a hot
        # handler collapses to one queue entry. Only sound when every
        # emit helper the handler's scalar body uses is the BaseVM
        # implementation — a subclass override of any of them means the
        # recorded rows could diverge, so the whole tier is skipped.
        self._t_load_fast = self._t_store_fast = None
        self._t_load_const = None
        self._t_load_attr = self._t_store_attr = None
        self._t_binop_prefix = self._t_int_body = None
        self._t_for_range = self._t_for_list = None
        self._t_pop_top = self._t_jump = None
        self._t_load_method_attr = self._t_load_method_cls = None
        self._t_load_global: dict[bool, tuple | bool] = {}
        self._t_return = None
        self._t_subscr = None
        self._t_call_method: dict[int, tuple | bool] = {}
        self._t_call_function: dict[int, tuple | bool] = {}
        self._t_call_setup: dict[int, tuple | bool] = {}
        self._t_int_full: dict[int, tuple | bool] = {}
        self._t_cond_jump: dict[tuple, tuple | bool] = {}
        #: Ops whose fused handler emits its own dispatch rows, so the
        #: interpreter loop must not emit them again.
        self._fused_dispatch = [False] * 96
        if fused_ok:
            cls = type(self)
            table = self._handlers
            # The fused handlers emit their own dispatch rows, so they
            # are only installed together with the burst interpreter
            # loop (which skips the separate dispatch emission for
            # them). A runtime with its own loop — e.g. a JIT that
            # interleaves recording hooks — keeps per-helper batching.
            if cls.execute_frame is BaseVM.execute_frame:
                self.execute_frame = self._burst_execute_frame
                fused_handlers = [
                    (Op.LOAD_FAST, "op_load_fast"),
                    (Op.STORE_FAST, "op_store_fast"),
                    (Op.LOAD_CONST, "op_load_const"),
                    (Op.LOAD_ATTR, "op_load_attr"),
                    (Op.FOR_ITER, "op_for_iter"),
                    (Op.POP_TOP, "op_pop_top"),
                    (Op.JUMP_ABSOLUTE, "op_jump_absolute"),
                    (Op.LOAD_METHOD, "op_load_method"),
                    (Op.RETURN_VALUE, "op_return_value"),
                ]
                if cls.lookup_global is BaseVM.lookup_global:
                    fused_handlers.append(
                        (Op.LOAD_GLOBAL, "op_load_global"))
                if cls._subscr_semantics is BaseVM._subscr_semantics:
                    fused_handlers.append(
                        (Op.BINARY_SUBSCR, "op_binary_subscr"))
                if cls.emit_write_barrier is BaseVM.emit_write_barrier:
                    fused_handlers.append(
                        (Op.STORE_ATTR, "op_store_attr"))
                if (cls._call_object is BaseVM._call_object
                        and cls._call_guest is BaseVM._call_guest
                        and cls.make_frame is BaseVM.make_frame):
                    fused_handlers.append(
                        (Op.CALL_METHOD, "op_call_method"))
                    fused_handlers.append(
                        (Op.CALL_FUNCTION, "op_call_function"))
                for op, name in fused_handlers:
                    if getattr(cls, name) is getattr(BaseVM, name):
                        table[int(op)] = getattr(self, "_burst_" + name)
                        self._fused_dispatch[int(op)] = True
                if (cls._binary_common is BaseVM._binary_common
                        and cls._binary_semantics
                        is BaseVM._binary_semantics
                        and cls._int_op is BaseVM._int_op):
                    for op_i, op_name in self._NUMERIC_OPS.items():
                        hname = "op_binary_" + op_name
                        if getattr(cls, hname, None) is \
                                getattr(BaseVM, hname, None):
                            table[op_i] = self._make_burst_binop(
                                op_i, op_name)
                            self._fused_dispatch[op_i] = True
                if (cls._conditional_jump is BaseVM._conditional_jump
                        and cls.emit_truthiness
                        is BaseVM.emit_truthiness):
                    for op, name, jump_if in (
                            (Op.POP_JUMP_IF_FALSE,
                             "op_pop_jump_if_false", False),
                            (Op.POP_JUMP_IF_TRUE,
                             "op_pop_jump_if_true", True)):
                        if getattr(cls, name) is getattr(BaseVM, name):
                            table[int(op)] = self._make_burst_cond_jump(
                                int(op), jump_if)
                            self._fused_dispatch[int(op)] = True
                # Every remaining handler gets a thin wrapper that owns
                # its dispatch emission, so the interpreter loop has no
                # per-op fused/unfused branch at all.
                for op_i, handler in enumerate(table):
                    if handler is None or self._fused_dispatch[op_i]:
                        continue
                    table[op_i] = self._make_dispatching_handler(
                        op_i, handler)
                    self._fused_dispatch[op_i] = True
            if cls._binary_common is BaseVM._binary_common:
                self._binary_common = self._burst_binary_common
            if cls._binary_semantics is BaseVM._binary_semantics:
                self._binary_semantics = self._burst_binary_semantics

    def _record_entry(self, thunk, dyn_base: list[int],
                      implicit: tuple[str, ...]) -> tuple | bool:
        """Record a template; return ``(tid, rows)`` or ``False``."""
        tid = self._eng.record(thunk, dyn_base, implicit=implicit)
        if tid is None:
            return False
        return (tid, self._eng.templates[tid].rows)

    def _burst_emit_dispatch(self, frame: Frame, op: int) -> None:
        try:
            bc_base = frame.bc_base
        except AttributeError:
            bc_base = frame.bc_base = self.code_addr(frame.code)
        self._dispatch_entry(op, bc_base + 2 * frame.pc)

    def _dispatch_entry(self, op: int, bc_addr: int) -> None:
        m = self.machine
        if m.suppressed or m.clib_depth:
            self._rows_dispatch(op, bc_addr)
            return
        entry = self._t_dispatch[op]
        if entry is None:
            entry = self._t_dispatch[op] = self._record_entry(
                lambda v: self._rows_dispatch(op, v[0]), [bc_addr], ())
        if entry is False:
            self._rows_dispatch(op, bc_addr)
            return
        m.origin = self._handler_site_by_op[op]
        self._q_append(entry[0])
        self._q_dyn_append(bc_addr)
        if len(self._q_order) >= _FLUSH_ENTRIES:
            self._eng.flush()

    def _make_dispatching_handler(self, op: int, handler):
        """Wrap a scalar handler so it emits its own dispatch rows.

        The burst loop calls every handler *after* incrementing the pc,
        so the wrapper reconstructs the dispatch address from ``pc - 1``
        — the same address the scalar loop would have emitted before
        the increment.
        """
        dispatch_entry = self._dispatch_entry
        code_addr = self.code_addr

        def run(frame: Frame, arg: int) -> int:
            try:
                bc_base = frame.bc_base
            except AttributeError:
                bc_base = frame.bc_base = code_addr(frame.code)
            dispatch_entry(op, bc_base + 2 * (frame.pc - 1))
            return handler(frame, arg)

        return run

    def _burst_execute_frame(self, frame: Frame) -> None:
        """Burst-mode interpreter loop.

        Identical to :meth:`execute_frame` except that dispatch
        emission lives inside the handlers: fused handlers start their
        single queue entry with the dispatch rows, and every other
        handler is wrapped by :meth:`_make_dispatching_handler`.
        """
        handlers = self._handlers
        ops = frame.code.ops
        args = frame.code.args
        stats = self.stats
        machine = self.machine
        budget_mask = 0x3FF
        # The counter lives in a local during the loop (handlers never
        # read it; run_frames is the only driver) and is synced on every
        # exit path, so the budget-check cadence matches the scalar loop.
        n = stats.bytecodes
        try:
            while True:
                op = ops[frame.pc]
                arg = args[frame.pc]
                frame.pc += 1
                n += 1
                if not (n & budget_mask):
                    stats.bytecodes = n
                    machine.check_budget()
                signal = handlers[op](frame, arg)
                if signal:
                    return
        finally:
            stats.bytecodes = n

    def _burst_emit_push(self, frame: Frame, obj: GuestObject) -> None:
        frame.stack.append(obj)
        m = self.machine
        if m.suppressed:
            return
        slot = frame.stack_addr(0)
        if m.clib_depth:
            self._rows_push(slot)
            return
        entry = self._t_push
        if entry is None:
            entry = self._t_push = self._record_entry(
                lambda v: self._rows_push(v[0]), [slot], ("origin",))
        if entry is False:
            self._rows_push(slot)
            return
        self._q_append(entry[0])
        self._q_extend((slot, m.origin))

    def _burst_emit_pop(self, frame: Frame) -> GuestObject:
        m = self.machine
        if m.suppressed:
            return frame.stack.pop()
        slot = frame.stack_addr(0)
        entry = self._t_pop
        if m.clib_depth or entry is False:
            self._rows_pop(slot)
            return frame.stack.pop()
        if entry is None:
            entry = self._t_pop = self._record_entry(
                lambda v: self._rows_pop(v[0]), [slot], ("origin",))
            if entry is False:
                self._rows_pop(slot)
                return frame.stack.pop()
        self._q_append(entry[0])
        self._q_extend((slot, m.origin))
        return frame.stack.pop()

    def _burst_emit_peek(self, frame: Frame,
                         depth: int = 0) -> GuestObject:
        m = self.machine
        if m.suppressed:
            return frame.stack[-1 - depth]
        slot = frame.stack_addr(depth)
        entry = self._t_peek
        if m.clib_depth or entry is False:
            self._rows_peek(slot)
            return frame.stack[-1 - depth]
        if entry is None:
            entry = self._t_peek = self._record_entry(
                lambda v: self._rows_peek(v[0]), [slot], ("origin",))
            if entry is False:
                self._rows_peek(slot)
                return frame.stack[-1 - depth]
        self._q_append(entry[0])
        self._q_extend((slot, m.origin))
        return frame.stack[-1 - depth]

    def _burst_emit_typecheck(self, obj: GuestObject,
                              n_branches: int = 1) -> None:
        m = self.machine
        if m.suppressed:
            return
        if m.clib_depth:
            self._rows_typecheck(obj.addr, n_branches)
            return
        entry = self._t_typecheck.get(n_branches)
        if entry is None:
            entry = self._t_typecheck[n_branches] = self._record_entry(
                lambda v: self._rows_typecheck(v[0], n_branches),
                [obj.addr], ("origin",))
        if entry is False:
            self._rows_typecheck(obj.addr, n_branches)
            return
        self._q_append(entry[0])
        self._q_extend((obj.addr, m.origin))

    def _burst_emit_error_check(self, taken: bool = False) -> None:
        m = self.machine
        if m.suppressed:
            return
        if m.clib_depth:
            self._rows_error_check(taken)
            return
        entry = self._t_err.get(taken)
        if entry is None:
            entry = self._t_err[taken] = self._record_entry(
                lambda v: self._rows_error_check(taken), [], ("origin",))
        if entry is False:
            self._rows_error_check(taken)
            return
        self._q_append(entry[0])
        self._q_dyn_append(m.origin)

    def _burst_emit_incref(self, obj: GuestObject) -> None:
        if not self.refcounting:
            return
        m = self.machine
        if m.suppressed:
            self.retain(obj)
            return
        if m.clib_depth:
            self._rows_incref(obj.addr)
            self.retain(obj)
            return
        entry = self._t_incref
        if entry is None:
            entry = self._t_incref = self._record_entry(
                lambda v: self._rows_incref(v[0]), [obj.addr],
                ("origin",))
        if entry is False:
            self._rows_incref(obj.addr)
            self.retain(obj)
            return
        self._q_append(entry[0])
        self._q_extend((obj.addr, m.origin))
        self.retain(obj)

    def _burst_emit_decref(self, obj: GuestObject) -> None:
        if not self.refcounting:
            return
        m = self.machine
        if m.suppressed:
            self.release(obj)
            return
        if m.clib_depth:
            self._rows_decref(obj.addr)
            self.release(obj)
            return
        entry = self._t_decref
        if entry is None:
            entry = self._t_decref = self._record_entry(
                lambda v: self._rows_decref(v[0]), [obj.addr],
                ("origin",))
        if entry is False:
            self._rows_decref(obj.addr)
            self.release(obj)
            return
        self._q_append(entry[0])
        self._q_extend((obj.addr, m.origin))
        # The decref rows precede any dealloc cascade, exactly as in the
        # scalar path: cascade emissions enqueue behind this entry.
        self.release(obj)

    def _burst_emit_execute_alu(self, n: int = 1) -> None:
        m = self.machine
        if m.suppressed:
            return
        if m.clib_depth:
            self._rows_execute_alu(n)
            return
        entry = self._t_exec_alu.get(n)
        if entry is None:
            entry = self._t_exec_alu[n] = self._record_entry(
                lambda v: self._rows_execute_alu(n), [], ("origin",))
        if entry is False:
            self._rows_execute_alu(n)
            return
        self._q_append(entry[0])
        self._q_dyn_append(m.origin)

    def _burst_dict_lookup_emit(self, d_table_addr: int,
                                slot_hint: int) -> None:
        m = self.machine
        if m.suppressed:
            return  # the scalar path's sp dip nets to zero rows/state
        probe = d_table_addr + 24 * (slot_hint & 1023)
        if m.clib_depth:
            self._rows_dict_lookup(probe)
            return
        entry = self._t_dict_lookup
        if entry is None:
            entry = self._t_dict_lookup = self._record_entry(
                lambda v: self._rows_dict_lookup(v[0]), [probe],
                ("origin", "sp"))
        if entry is False:
            self._rows_dict_lookup(probe)
            return
        self._q_append(entry[0])
        self._q_extend((probe, m.origin, m.sp))

    # ------------------------------------------------------------------
    # Fused whole-handler templates (burst backend)
    # ------------------------------------------------------------------

    # Each ``_rows_op_*`` body replays the *entire* emission of a hot
    # handler's common path, stitched from the same ``_rows_*`` pieces
    # the scalar handler uses — so the recorded template is bit-identical
    # to the scalar row stream. The ``_burst_op_*`` handler performs the
    # semantics, decides whether the common path applies (anything
    # unusual delegates to the scalar handler body, whose emit helpers
    # are burst-bound and therefore still queue correctly), and enqueues
    # a single entry. Trailing ``emit_decref`` calls stay *outside* the
    # fused template: a decref can trigger a dealloc cascade whose rows
    # must land after the decref rows, which only the dedicated wrapper
    # ordering guarantees.

    def _rows_op_load_fast(self, bc_addr: int, local_addr: int,
                           obj_addr: int, slot_addr: int) -> None:
        m = self.machine
        self._rows_dispatch(_OP_LOAD_FAST, bc_addr)
        m.alu(self.s_regxfer + 8, _REG, n=1)
        m.load(self.s_stack + 56, _STACK, local_addr)
        self._rows_error_check(False)
        if self.refcounting:
            self._rows_incref(obj_addr)
        self._rows_push(slot_addr)

    def _burst_op_load_fast(self, frame: Frame, arg: int) -> int:
        try:
            bc_base = frame.bc_base
        except AttributeError:
            bc_base = frame.bc_base = self.code_addr(frame.code)
        bc_addr = bc_base + 2 * (frame.pc - 1)
        obj = frame.locals[arg]
        m = self.machine
        if obj is None or m.suppressed or m.clib_depth:
            self._dispatch_entry(_OP_LOAD_FAST, bc_addr)
            return BaseVM.op_load_fast(self, frame, arg)
        stack = frame.stack
        idx = len(stack)
        base_addr = frame.addr + _FRAME_HEADER
        entry = self._t_load_fast
        if entry is None:
            entry = self._t_load_fast = self._record_entry(
                lambda v: self._rows_op_load_fast(v[0], v[1], v[2], v[3]),
                [bc_addr,
                 base_addr + 8 * _FRAME_STACK_SLOTS + 8 * arg, obj.addr,
                 base_addr + 8 * (idx % _FRAME_STACK_SLOTS)], ())
        if entry is False:
            self._dispatch_entry(_OP_LOAD_FAST, bc_addr)
            return BaseVM.op_load_fast(self, frame, arg)
        m.origin = self._handler_site_by_op[_OP_LOAD_FAST]
        stack.append(obj)
        self._q_append(entry[0])
        self._q_extend((
            bc_addr,
            base_addr + 8 * _FRAME_STACK_SLOTS + 8 * arg,
            obj.addr,
            base_addr + 8 * (idx % _FRAME_STACK_SLOTS),
        ))
        if len(self._q_order) >= _FLUSH_ENTRIES:
            self._eng.flush()
        if self.refcounting:
            self.retain(obj)
        return _NEXT

    def _rows_op_store_fast(self, bc_addr: int, pop_slot: int,
                            local_addr: int) -> None:
        m = self.machine
        self._rows_dispatch(_OP_STORE_FAST, bc_addr)
        self._rows_pop(pop_slot)
        m.alu(self.s_regxfer + 12, _REG, n=1)
        m.store(self.s_stack + 60, _STACK, local_addr)

    def _burst_op_store_fast(self, frame: Frame, arg: int) -> int:
        try:
            bc_base = frame.bc_base
        except AttributeError:
            bc_base = frame.bc_base = self.code_addr(frame.code)
        bc_addr = bc_base + 2 * (frame.pc - 1)
        m = self.machine
        stack = frame.stack
        if m.suppressed or m.clib_depth or not stack:
            self._dispatch_entry(_OP_STORE_FAST, bc_addr)
            return BaseVM.op_store_fast(self, frame, arg)
        idx = len(stack) - 1
        base_addr = frame.addr + _FRAME_HEADER
        entry = self._t_store_fast
        if entry is None:
            entry = self._t_store_fast = self._record_entry(
                lambda v: self._rows_op_store_fast(v[0], v[1], v[2]),
                [bc_addr, base_addr + 8 * (idx % _FRAME_STACK_SLOTS),
                 base_addr + 8 * _FRAME_STACK_SLOTS + 8 * arg], ())
        if entry is False:
            self._dispatch_entry(_OP_STORE_FAST, bc_addr)
            return BaseVM.op_store_fast(self, frame, arg)
        m.origin = self._handler_site_by_op[_OP_STORE_FAST]
        obj = stack.pop()
        self._q_append(entry[0])
        self._q_extend((
            bc_addr,
            base_addr + 8 * (idx % _FRAME_STACK_SLOTS),
            base_addr + 8 * _FRAME_STACK_SLOTS + 8 * arg,
        ))
        if len(self._q_order) >= _FLUSH_ENTRIES:
            self._eng.flush()
        old = frame.locals[arg]
        frame.locals[arg] = obj
        if old is not None:
            self.emit_decref(old)
        return _NEXT

    def _rows_op_load_const(self, bc_addr: int, const_addr: int,
                            obj_addr: int, slot_addr: int) -> None:
        m = self.machine
        self._rows_dispatch(_OP_LOAD_CONST, bc_addr)
        m.alu(self.s_regxfer + 4, _REG, n=1)
        m.load(self.s_const, _CONST, const_addr)
        if self.refcounting:
            self._rows_incref(obj_addr)
        self._rows_push(slot_addr)

    def _burst_op_load_const(self, frame: Frame, arg: int) -> int:
        try:
            bc_base = frame.bc_base
        except AttributeError:
            bc_base = frame.bc_base = self.code_addr(frame.code)
        bc_addr = bc_base + 2 * (frame.pc - 1)
        m = self.machine
        if m.suppressed or m.clib_depth:
            self._dispatch_entry(_OP_LOAD_CONST, bc_addr)
            return BaseVM.op_load_const(self, frame, arg)
        obj = self._const_objects[id(frame.code)][arg]
        stack = frame.stack
        idx = len(stack)
        base_addr = frame.addr + _FRAME_HEADER
        entry = self._t_load_const
        if entry is None:
            entry = self._t_load_const = self._record_entry(
                lambda v: self._rows_op_load_const(v[0], v[1], v[2],
                                                   v[3]),
                [bc_addr, bc_base + 64 + 8 * arg, obj.addr,
                 base_addr + 8 * (idx % _FRAME_STACK_SLOTS)], ())
        if entry is False:
            self._dispatch_entry(_OP_LOAD_CONST, bc_addr)
            return BaseVM.op_load_const(self, frame, arg)
        m.origin = self._handler_site_by_op[_OP_LOAD_CONST]
        stack.append(obj)
        self._q_append(entry[0])
        self._q_extend((
            bc_addr,
            bc_base + 64 + 8 * arg,
            obj.addr,
            base_addr + 8 * (idx % _FRAME_STACK_SLOTS),
        ))
        if len(self._q_order) >= _FLUSH_ENTRIES:
            self._eng.flush()
        if self.refcounting:
            self.retain(obj)
        return _NEXT

    def _rows_op_load_attr(self, bc_addr: int, pop_slot: int,
                           obj_addr: int, probe: int,
                           attr_addr: int) -> None:
        m = self.machine
        self._rows_dispatch(_OP_LOAD_ATTR, bc_addr)
        self._rows_pop(pop_slot)
        self._rows_typecheck(obj_addr, 1)
        m.alu(self.s_name + 32, _NAME, n=2)
        self._rows_dict_lookup(probe)
        if self.refcounting:
            self._rows_incref(attr_addr)

    def _burst_op_load_attr(self, frame: Frame, arg: int) -> int:
        try:
            bc_base = frame.bc_base
        except AttributeError:
            bc_base = frame.bc_base = self.code_addr(frame.code)
        bc_addr = bc_base + 2 * (frame.pc - 1)
        m = self.machine
        stack = frame.stack
        obj = stack[-1] if stack else None
        name = frame.code.names[arg]
        if (m.suppressed or m.clib_depth
                or not isinstance(obj, PyInstance)
                or name not in obj.attrs):
            self._dispatch_entry(_OP_LOAD_ATTR, bc_addr)
            return BaseVM.op_load_attr(self, frame, arg)
        idx = len(stack) - 1
        base_addr = frame.addr + _FRAME_HEADER
        probe = obj.addr + 16 + 24 * (stable_hash(name) & 1023)
        attr = obj.attrs[name]
        entry = self._t_load_attr
        if entry is None:
            entry = self._t_load_attr = self._record_entry(
                lambda v: self._rows_op_load_attr(v[0], v[1], v[2], v[3],
                                                  v[4]),
                [bc_addr, base_addr + 8 * (idx % _FRAME_STACK_SLOTS),
                 obj.addr, probe, attr.addr], ("sp",))
        if entry is False:
            self._dispatch_entry(_OP_LOAD_ATTR, bc_addr)
            return BaseVM.op_load_attr(self, frame, arg)
        m.origin = self._handler_site_by_op[_OP_LOAD_ATTR]
        stack.pop()
        self._q_append(entry[0])
        self._q_extend((
            bc_addr,
            base_addr + 8 * (idx % _FRAME_STACK_SLOTS),
            obj.addr,
            probe,
            attr.addr,
            m.sp,
        ))
        if len(self._q_order) >= _FLUSH_ENTRIES:
            self._eng.flush()
        if self.refcounting:
            self.retain(attr)
        self.emit_decref(obj)
        self.emit_push(frame, attr)
        return _NEXT

    def _rows_op_store_attr(self, bc_addr: int, pop_obj_slot: int,
                            pop_val_slot: int, obj_addr: int, probe: int,
                            store_addr: int) -> None:
        m = self.machine
        self._rows_dispatch(_OP_STORE_ATTR, bc_addr)
        self._rows_pop(pop_obj_slot)
        self._rows_pop(pop_val_slot)
        self._rows_typecheck(obj_addr, 1)
        m.alu(self.s_name + 40, _NAME, n=2)
        self._rows_dict_lookup(probe)
        m.store(self.s_name + 44, _NAME, store_addr)

    def _burst_op_store_attr(self, frame: Frame, arg: int) -> int:
        try:
            bc_base = frame.bc_base
        except AttributeError:
            bc_base = frame.bc_base = self.code_addr(frame.code)
        bc_addr = bc_base + 2 * (frame.pc - 1)
        m = self.machine
        stack = frame.stack
        obj = stack[-1] if stack else None
        if (m.suppressed or m.clib_depth or len(stack) < 2
                or not isinstance(obj, PyInstance)):
            self._dispatch_entry(_OP_STORE_ATTR, bc_addr)
            return BaseVM.op_store_attr(self, frame, arg)
        name = frame.code.names[arg]
        idx = len(stack) - 1
        base_addr = frame.addr + _FRAME_HEADER
        name_hash = stable_hash(name)
        probe = obj.addr + 16 + 24 * (name_hash & 1023)
        store_addr = obj.addr + 16 + (name_hash & 63)
        entry = self._t_store_attr
        if entry is None:
            entry = self._t_store_attr = self._record_entry(
                lambda v: self._rows_op_store_attr(v[0], v[1], v[2],
                                                   v[3], v[4], v[5]),
                [bc_addr, base_addr + 8 * (idx % _FRAME_STACK_SLOTS),
                 base_addr + 8 * ((idx - 1) % _FRAME_STACK_SLOTS),
                 obj.addr, probe, store_addr], ("sp",))
        if entry is False:
            self._dispatch_entry(_OP_STORE_ATTR, bc_addr)
            return BaseVM.op_store_attr(self, frame, arg)
        m.origin = self._handler_site_by_op[_OP_STORE_ATTR]
        stack.pop()
        value = stack.pop()
        self._q_append(entry[0])
        self._q_extend((
            bc_addr,
            base_addr + 8 * (idx % _FRAME_STACK_SLOTS),
            base_addr + 8 * ((idx - 1) % _FRAME_STACK_SLOTS),
            obj.addr,
            probe,
            store_addr,
            m.sp,
        ))
        if len(self._q_order) >= _FLUSH_ENTRIES:
            self._eng.flush()
        old = obj.attrs.get(name)
        obj.attrs[name] = value
        if old is not None:
            self.emit_decref(old)
        self.emit_decref(obj)
        return _NEXT

    def _rows_binop_prefix(self, pop_r_slot: int, pop_l_slot: int,
                           left_addr: int, right_addr: int) -> None:
        m = self.machine
        self._rows_pop(pop_r_slot)
        self._rows_pop(pop_l_slot)
        self._rows_typecheck(left_addr, 1)
        self._rows_typecheck(right_addr, 1)
        m.load(self.s_funcres, _FUNC_RES, left_addr)
        m.load(self.s_funcres + 8, _FUNC_RES,
               self.machine.space.vm_data.base + 0x2000)
        m.alu(self.s_funcres + 12, _FUNC_RES, n=1)

    def _burst_binary_common(self, frame: Frame, op_name: str) -> int:
        m = self.machine
        stack = frame.stack
        if m.suppressed or m.clib_depth or len(stack) < 2:
            return BaseVM._binary_common(self, frame, op_name)
        idx = len(stack) - 1
        base_addr = frame.addr + _FRAME_HEADER
        entry = self._t_binop_prefix
        if entry is None:
            entry = self._t_binop_prefix = self._record_entry(
                lambda v: self._rows_binop_prefix(v[0], v[1], v[2], v[3]),
                [base_addr + 8 * (idx % _FRAME_STACK_SLOTS),
                 base_addr + 8 * ((idx - 1) % _FRAME_STACK_SLOTS),
                 stack[-2].addr, stack[-1].addr], ("origin",))
        if entry is False:
            return BaseVM._binary_common(self, frame, op_name)
        right = stack.pop()
        left = stack.pop()
        self._q_append(entry[0])
        self._q_extend((
            base_addr + 8 * (idx % _FRAME_STACK_SLOTS),
            base_addr + 8 * ((idx - 1) % _FRAME_STACK_SLOTS),
            left.addr,
            right.addr,
            m.origin,
        ))
        result = None
        with m.c_call(f"ceval.call_binop_{op_name}",
                      f"abstract.binary_{op_name}", indirect=True,
                      args=2, saves=2):
            result = self._binary_semantics(left, right, op_name)
        self.emit_decref(left)
        self.emit_decref(right)
        self.emit_push(frame, result)
        return _NEXT

    def _rows_int_binop(self, left_addr: int, right_addr: int) -> None:
        m = self.machine
        m.load(self.s_box, _BOX, left_addr + 16)
        m.load(self.s_box, _BOX, right_addr + 16)
        self._rows_error_check(False)
        m.alu(self.s_box + 16, _BOX, n=1)

    def _burst_binary_semantics(self, left: GuestObject,
                                right: GuestObject,
                                op_name: str) -> GuestObject:
        m = self.machine
        if (not m.suppressed and not m.clib_depth
                and isinstance(left, (PyInt, PyBool))
                and isinstance(right, (PyInt, PyBool))):
            lv = int(left.value)
            rv = int(right.value)
            # Paths that raise, return floats, or shift by huge amounts
            # must emit through the scalar body (its rows precede the
            # exception / allocation).
            if not (op_name == "truediv"
                    or (rv < 0 and op_name in ("lshift", "rshift", "pow"))
                    or (rv == 0 and op_name in ("floordiv", "mod"))):
                value = self._int_op(op_name, lv, rv)
                if (type(value) is int
                        and SMALL_INT_MIN <= value <= SMALL_INT_MAX):
                    entry = self._t_int_body
                    if entry is None:
                        entry = self._t_int_body = self._record_entry(
                            lambda v: self._rows_int_binop(v[0], v[1]),
                            [left.addr, right.addr], ("origin",))
                    if entry is not False:
                        self._q_append(entry[0])
                        self._q_extend((left.addr, right.addr, m.origin))
                        return self._small_ints[value]
        return BaseVM._binary_semantics(self, left, right, op_name)

    def _rows_for_iter_range(self, bc_addr: int, peek_slot: int,
                             iter_addr: int, push_slot: int) -> None:
        m = self.machine
        self._rows_dispatch(_OP_FOR_ITER, bc_addr)
        self._rows_peek(peek_slot)
        m.load(self.s_funcres + 20, _FUNC_RES, iter_addr)
        with m.c_call("ceval.call_iternext", "object.iternext",
                      indirect=True, args=1, saves=1):
            m.alu(self.s_box + 16, _BOX, n=1)  # make_int (small cache)
            m.load(self.s_exec + 52, _EXEC, iter_addr + 16)
            m.alu(self.s_exec + 56, _EXEC, n=1)
        m.branch(self.s_rich + 60, _RICH, taken=False)
        self._rows_push(push_slot)

    def _rows_for_iter_list(self, bc_addr: int, peek_slot: int,
                            iter_addr: int, item_addr: int,
                            push_slot: int) -> None:
        m = self.machine
        self._rows_dispatch(_OP_FOR_ITER, bc_addr)
        self._rows_peek(peek_slot)
        m.load(self.s_funcres + 20, _FUNC_RES, iter_addr)
        with m.c_call("ceval.call_iternext", "object.iternext",
                      indirect=True, args=1, saves=1):
            if self.refcounting:
                self._rows_incref(item_addr)
            m.load(self.s_exec + 52, _EXEC, iter_addr + 16)
            m.alu(self.s_exec + 56, _EXEC, n=1)
        m.branch(self.s_rich + 60, _RICH, taken=False)
        self._rows_push(push_slot)

    def _burst_op_for_iter(self, frame: Frame, arg: int) -> int:
        try:
            bc_base = frame.bc_base
        except AttributeError:
            bc_base = frame.bc_base = self.code_addr(frame.code)
        bc_addr = bc_base + 2 * (frame.pc - 1)
        m = self.machine
        stack = frame.stack
        iterator = stack[-1] if stack else None
        if m.suppressed or m.clib_depth \
                or not isinstance(iterator, PyIterator):
            self._dispatch_entry(_OP_FOR_ITER, bc_addr)
            return BaseVM.op_for_iter(self, frame, arg)
        kind = iterator.kind
        source = iterator.source
        index = iterator.index
        idx = len(stack) - 1
        base_addr = frame.addr + _FRAME_HEADER
        peek_slot = base_addr + 8 * (idx % _FRAME_STACK_SLOTS)
        push_slot = base_addr + 8 * ((idx + 1) % _FRAME_STACK_SLOTS)
        if kind == "range":
            value = source.start + index * source.step
            in_range = (value < source.stop if source.step > 0
                        else value > source.stop)
            if not in_range or not (
                    SMALL_INT_MIN <= value <= SMALL_INT_MAX):
                self._dispatch_entry(_OP_FOR_ITER, bc_addr)
                return BaseVM.op_for_iter(self, frame, arg)
            entry = self._t_for_range
            if entry is None:
                entry = self._t_for_range = self._record_entry(
                    lambda v: self._rows_for_iter_range(v[0], v[1], v[2],
                                                        v[3]),
                    [bc_addr, peek_slot, iterator.addr, push_slot],
                    ("sp",))
            if entry is False:
                self._dispatch_entry(_OP_FOR_ITER, bc_addr)
                return BaseVM.op_for_iter(self, frame, arg)
            m.origin = self._handler_site_by_op[_OP_FOR_ITER]
            iterator.index = index + 1
            obj = self._small_ints[value]
            stack.append(obj)
            self._q_append(entry[0])
            self._q_extend((bc_addr, peek_slot, iterator.addr, push_slot, m.sp))
            if len(self._q_order) >= _FLUSH_ENTRIES:
                self._eng.flush()
            return _NEXT
        if kind in ("list", "tuple"):
            items = source.items
            if index >= len(items):
                self._dispatch_entry(_OP_FOR_ITER, bc_addr)
                return BaseVM.op_for_iter(self, frame, arg)
            entry = self._t_for_list
            item = items[index]
            if entry is None:
                entry = self._t_for_list = self._record_entry(
                    lambda v: self._rows_for_iter_list(v[0], v[1], v[2],
                                                       v[3], v[4]),
                    [bc_addr, peek_slot, iterator.addr, item.addr,
                     push_slot], ("sp",))
            if entry is False:
                self._dispatch_entry(_OP_FOR_ITER, bc_addr)
                return BaseVM.op_for_iter(self, frame, arg)
            m.origin = self._handler_site_by_op[_OP_FOR_ITER]
            iterator.index = index + 1
            if self.refcounting:
                self.retain(item)
            stack.append(item)
            self._q_append(entry[0])
            self._q_extend((
                bc_addr,
                peek_slot,
                iterator.addr,
                item.addr,
                push_slot,
                m.sp,
            ))
            if len(self._q_order) >= _FLUSH_ENTRIES:
                self._eng.flush()
            return _NEXT
        self._dispatch_entry(_OP_FOR_ITER, bc_addr)
        return BaseVM.op_for_iter(self, frame, arg)

    def _rows_op_pop_top(self, bc_addr: int, pop_slot: int,
                         obj_addr: int) -> None:
        self._rows_dispatch(_OP_POP_TOP, bc_addr)
        self._rows_pop(pop_slot)
        if self.refcounting:
            self._rows_decref(obj_addr)

    def _burst_op_pop_top(self, frame: Frame, arg: int) -> int:
        try:
            bc_base = frame.bc_base
        except AttributeError:
            bc_base = frame.bc_base = self.code_addr(frame.code)
        bc_addr = bc_base + 2 * (frame.pc - 1)
        m = self.machine
        stack = frame.stack
        if m.suppressed or m.clib_depth or not stack:
            self._dispatch_entry(_OP_POP_TOP, bc_addr)
            return BaseVM.op_pop_top(self, frame, arg)
        idx = len(stack) - 1
        base_addr = frame.addr + _FRAME_HEADER
        obj = stack[-1]
        entry = self._t_pop_top
        if entry is None:
            entry = self._t_pop_top = self._record_entry(
                lambda v: self._rows_op_pop_top(v[0], v[1], v[2]),
                [bc_addr, base_addr + 8 * (idx % _FRAME_STACK_SLOTS),
                 obj.addr], ())
        if entry is False:
            self._dispatch_entry(_OP_POP_TOP, bc_addr)
            return BaseVM.op_pop_top(self, frame, arg)
        m.origin = self._handler_site_by_op[_OP_POP_TOP]
        stack.pop()
        self._q_append(entry[0])
        self._q_extend((
            bc_addr,
            base_addr + 8 * (idx % _FRAME_STACK_SLOTS),
            obj.addr,
        ))
        if len(self._q_order) >= _FLUSH_ENTRIES:
            self._eng.flush()
        if self.refcounting:
            # The decref rows are already queued; a zero refcount now
            # cascades through ``_dealloc``, whose rows land after them
            # — the same order the scalar path produces.
            self.release(obj)
        return _NEXT

    def _rows_int_binop_full(self, op: int, op_name: str,
                             values: list) -> None:
        """Whole int-op body: dispatch, operand pops, the inlined
        ``abstract.binary_*`` C call, operand decrefs, result push.

        ``values`` is ``[bc_addr, pop_r_slot, pop_l_slot, left_addr,
        right_addr, push_slot]``.
        """
        m = self.machine
        self._rows_dispatch(op, values[0])
        self._rows_binop_prefix(values[1], values[2],
                                values[3], values[4])
        with m.c_call(f"ceval.call_binop_{op_name}",
                      f"abstract.binary_{op_name}", indirect=True,
                      args=2, saves=2):
            self._rows_int_binop(values[3], values[4])
        if self.refcounting:
            self._rows_decref(values[3])
            self._rows_decref(values[4])
        self._rows_push(values[5])

    def _make_burst_binop(self, op: int, op_name: str):
        """A fused handler for one numeric bytecode.

        The fast path covers small-int arithmetic where neither operand
        decref can trigger a dealloc cascade (so the whole row sequence
        is a single template); everything else falls back to the
        prefix-batched :meth:`_burst_binary_common` path.
        """
        excluded_neg = op_name in ("lshift", "rshift", "pow")
        excluded_zero = op_name in ("floordiv", "mod")
        truediv = op_name == "truediv"

        def run(frame: Frame, arg: int) -> int:
            try:
                bc_base = frame.bc_base
            except AttributeError:
                bc_base = frame.bc_base = self.code_addr(frame.code)
            bc_addr = bc_base + 2 * (frame.pc - 1)
            m = self.machine
            stack = frame.stack
            left = stack[-2] if len(stack) > 1 else None
            right = stack[-1] if stack else None
            if (m.suppressed or m.clib_depth or truediv
                    or not isinstance(left, (PyInt, PyBool))
                    or not isinstance(right, (PyInt, PyBool))):
                self._dispatch_entry(op, bc_addr)
                return self._binary_common(frame, op_name)
            lv = int(left.value)
            rv = int(right.value)
            if ((rv < 0 and excluded_neg) or (rv == 0 and excluded_zero)
                    or (self.refcounting and (left.refcount == 1
                                              or right.refcount == 1))):
                self._dispatch_entry(op, bc_addr)
                return self._binary_common(frame, op_name)
            value = self._int_op(op_name, lv, rv)
            if not (type(value) is int
                    and SMALL_INT_MIN <= value <= SMALL_INT_MAX):
                self._dispatch_entry(op, bc_addr)
                return self._binary_common(frame, op_name)
            idx = len(stack) - 1
            base_addr = frame.addr + _FRAME_HEADER
            pop_r = base_addr + 8 * (idx % _FRAME_STACK_SLOTS)
            pop_l = base_addr + 8 * ((idx - 1) % _FRAME_STACK_SLOTS)
            entry = self._t_int_full.get(op)
            if entry is None:
                entry = self._t_int_full[op] = self._record_entry(
                    lambda v: self._rows_int_binop_full(op, op_name, v),
                    [bc_addr, pop_r, pop_l, left.addr, right.addr,
                     pop_l], ("sp",))
            if entry is False:
                self._dispatch_entry(op, bc_addr)
                return self._binary_common(frame, op_name)
            m.origin = self._handler_site_by_op[op]
            stack.pop()
            stack.pop()
            self._q_append(entry[0])
            self._q_extend((bc_addr, pop_r, pop_l, left.addr,
                            right.addr, pop_l, m.sp))
            if len(self._q_order) >= _FLUSH_ENTRIES:
                self._eng.flush()
            if self.refcounting:
                self.release(left)
                self.release(right)
            stack.append(self._small_ints[value])
            return _NEXT

        return run

    def _rows_cond_jump(self, op: int, taken: bool,
                        values: list) -> None:
        """Dispatch + pop + PyObject_IsTrue + decref + branch.

        ``values`` is ``[bc_addr, pop_slot, obj_addr]``.
        """
        m = self.machine
        self._rows_dispatch(op, values[0])
        self._rows_pop(values[1])
        self._rows_typecheck(values[2], 2)
        m.load(self.s_rich, _RICH, values[2] + 16)
        m.alu(self.s_rich + 8, _RICH, n=1)
        if self.refcounting:
            self._rows_decref(values[2])
        m.branch(self.s_rich + 16, _RICH, taken=taken)

    def _make_burst_cond_jump(self, op: int, jump_if: bool):
        """Fused handler for POP_JUMP_IF_FALSE / POP_JUMP_IF_TRUE."""

        def run(frame: Frame, arg: int) -> int:
            try:
                bc_base = frame.bc_base
            except AttributeError:
                bc_base = frame.bc_base = self.code_addr(frame.code)
            bc_addr = bc_base + 2 * (frame.pc - 1)
            m = self.machine
            stack = frame.stack
            obj = stack[-1] if stack else None
            if (m.suppressed or m.clib_depth or obj is None
                    or (self.refcounting and obj.refcount == 1)):
                self._dispatch_entry(op, bc_addr)
                return self._conditional_jump(frame, arg, jump_if)
            taken = obj.is_truthy() == jump_if
            entry = self._t_cond_jump.get((op, taken))
            idx = len(stack) - 1
            base_addr = frame.addr + _FRAME_HEADER
            pop_slot = base_addr + 8 * (idx % _FRAME_STACK_SLOTS)
            if entry is None:
                entry = self._t_cond_jump[(op, taken)] = \
                    self._record_entry(
                        lambda v, t=taken: self._rows_cond_jump(
                            op, t, v),
                        [bc_addr, pop_slot, obj.addr], ())
            if entry is False:
                self._dispatch_entry(op, bc_addr)
                return self._conditional_jump(frame, arg, jump_if)
            m.origin = self._handler_site_by_op[op]
            stack.pop()
            self._q_append(entry[0])
            self._q_extend((bc_addr, pop_slot, obj.addr))
            if len(self._q_order) >= _FLUSH_ENTRIES:
                self._eng.flush()
            if self.refcounting:
                self.release(obj)
            if taken:
                if arg < frame.pc:
                    self.on_backedge(frame, arg)
                frame.pc = arg
            return _NEXT

        return run

    def _rows_op_load_method_cls(self, bc_addr: int, pop_slot: int,
                                 obj_addr: int, obj_probe: int,
                                 cls_probe: int) -> None:
        m = self.machine
        self._rows_dispatch(_OP_LOAD_METHOD, bc_addr)
        self._rows_pop(pop_slot)
        self._rows_typecheck(obj_addr, 2)
        m.alu(self.s_name + 24, _NAME, n=2)
        self._rows_dict_lookup(obj_probe)
        m.branch(self.s_name + 28, _NAME, taken=True)
        self._rows_dict_lookup(cls_probe)

    def _rows_op_load_method_attr(self, bc_addr: int, pop_slot: int,
                                  obj_addr: int, obj_probe: int,
                                  attr_addr: int) -> None:
        m = self.machine
        self._rows_dispatch(_OP_LOAD_METHOD, bc_addr)
        self._rows_pop(pop_slot)
        self._rows_typecheck(obj_addr, 2)
        m.alu(self.s_name + 24, _NAME, n=2)
        self._rows_dict_lookup(obj_probe)
        if self.refcounting:
            self._rows_incref(attr_addr)

    def _burst_op_load_method(self, frame: Frame, arg: int) -> int:
        try:
            bc_base = frame.bc_base
        except AttributeError:
            bc_base = frame.bc_base = self.code_addr(frame.code)
        bc_addr = bc_base + 2 * (frame.pc - 1)
        m = self.machine
        stack = frame.stack
        obj = stack[-1] if stack else None
        if (m.suppressed or m.clib_depth
                or not isinstance(obj, PyInstance)):
            self._dispatch_entry(_OP_LOAD_METHOD, bc_addr)
            return BaseVM.op_load_method(self, frame, arg)
        name = frame.code.names[arg]
        idx = len(stack) - 1
        base_addr = frame.addr + _FRAME_HEADER
        pop_slot = base_addr + 8 * (idx % _FRAME_STACK_SLOTS)
        name_hash = stable_hash(name)
        obj_probe = obj.addr + 16 + 24 * (name_hash & 1023)
        attr = obj.attrs.get(name)
        if attr is not None:
            entry = self._t_load_method_attr
            if entry is None:
                entry = self._t_load_method_attr = self._record_entry(
                    lambda v: self._rows_op_load_method_attr(
                        v[0], v[1], v[2], v[3], v[4]),
                    [bc_addr, pop_slot, obj.addr, obj_probe, attr.addr],
                    ("sp",))
            if entry is False:
                self._dispatch_entry(_OP_LOAD_METHOD, bc_addr)
                return BaseVM.op_load_method(self, frame, arg)
            m.origin = self._handler_site_by_op[_OP_LOAD_METHOD]
            stack.pop()
            self._q_append(entry[0])
            self._q_extend((
                bc_addr,
                pop_slot,
                obj.addr,
                obj_probe,
                attr.addr,
                m.sp,
            ))
            if len(self._q_order) >= _FLUSH_ENTRIES:
                self._eng.flush()
            if self.refcounting:
                self.retain(attr)
            self.emit_push(frame, attr)
            self.emit_decref(obj)
            return _NEXT
        func = obj.cls.methods.get(name)
        if func is None:
            self._dispatch_entry(_OP_LOAD_METHOD, bc_addr)
            return BaseVM.op_load_method(self, frame, arg)
        cls_probe = obj.cls.addr + 16 + 24 * (name_hash & 1023)
        entry = self._t_load_method_cls
        if entry is None:
            entry = self._t_load_method_cls = self._record_entry(
                lambda v: self._rows_op_load_method_cls(
                    v[0], v[1], v[2], v[3], v[4]),
                [bc_addr, pop_slot, obj.addr, obj_probe, cls_probe],
                ("sp",))
        if entry is False:
            self._dispatch_entry(_OP_LOAD_METHOD, bc_addr)
            return BaseVM.op_load_method(self, frame, arg)
        m.origin = self._handler_site_by_op[_OP_LOAD_METHOD]
        stack.pop()
        self._q_append(entry[0])
        self._q_extend((bc_addr, pop_slot, obj.addr, obj_probe, cls_probe, m.sp))
        if len(self._q_order) >= _FLUSH_ENTRIES:
            self._eng.flush()
        method = PyBoundMethod(obj, func)
        self.alloc_object(method)
        self.emit_push(frame, method)
        return _NEXT

    def _rows_op_load_global(self, miss: bool, values: list) -> None:
        """Uncached LOAD_GLOBAL: name fetch, lookdict probe(s), push.

        ``values`` is ``[bc_addr, name_cell, globals_probe,
        (builtins_probe,) obj_addr, push_slot]`` — the builtins probe is
        present only on the globals-miss shape.
        """
        m = self.machine
        self._rows_dispatch(_OP_LOAD_GLOBAL, values[0])
        m.alu(self.s_name, _NAME, n=4)
        m.load(self.s_name + 16, _NAME, values[1])
        self._rows_dict_lookup(values[2])
        if miss:
            m.branch(self.s_name + 8, _NAME, taken=True)
            self._rows_dict_lookup(values[3])
        if self.refcounting:
            self._rows_incref(values[-2])
        self._rows_push(values[-1])

    def _burst_op_load_global(self, frame: Frame, arg: int) -> int:
        try:
            bc_base = frame.bc_base
        except AttributeError:
            bc_base = frame.bc_base = self.code_addr(frame.code)
        bc_addr = bc_base + 2 * (frame.pc - 1)
        m = self.machine
        if m.suppressed or m.clib_depth or self.global_cache_enabled:
            self._dispatch_entry(_OP_LOAD_GLOBAL, bc_addr)
            return BaseVM.op_load_global(self, frame, arg)
        name = frame.code.names[arg]
        obj = self.globals.get(name)
        miss = obj is None
        if miss:
            obj = self.builtins.get(name)
            if obj is None:  # NameError path stays scalar
                self._dispatch_entry(_OP_LOAD_GLOBAL, bc_addr)
                return BaseVM.op_load_global(self, frame, arg)
        name_hash = stable_hash(name)
        base = m.space.vm_data.base
        name_cell = base + 0x900 + (name_hash & 0xFF8)
        table = base + 0x1000
        probe = table + 24 * (name_hash & 1023)
        push_slot = frame.addr + _FRAME_HEADER \
            + 8 * (len(frame.stack) % _FRAME_STACK_SLOTS)
        if miss:
            values = [bc_addr, name_cell, probe,
                      table + 0x8000 + 24 * (name_hash & 1023),
                      obj.addr, push_slot]
        else:
            values = [bc_addr, name_cell, probe, obj.addr, push_slot]
        entry = self._t_load_global.get(miss)
        if entry is None:
            entry = self._t_load_global[miss] = self._record_entry(
                lambda v: self._rows_op_load_global(miss, v),
                values, ("sp",))
        if entry is False:
            self._dispatch_entry(_OP_LOAD_GLOBAL, bc_addr)
            return BaseVM.op_load_global(self, frame, arg)
        m.origin = self._handler_site_by_op[_OP_LOAD_GLOBAL]
        self._q_append(entry[0])
        self._q_extend(values)
        self._q_dyn_append(m.sp)
        if len(self._q_order) >= _FLUSH_ENTRIES:
            self._eng.flush()
        if self.refcounting:
            self.retain(obj)
        frame.stack.append(obj)
        return _NEXT

    def _rows_op_return(self, bc_addr: int, pop_slot: int) -> None:
        self._rows_dispatch(_OP_RETURN_VALUE, bc_addr)
        self._rows_pop(pop_slot)

    def _burst_op_return_value(self, frame: Frame, arg: int) -> int:
        try:
            bc_base = frame.bc_base
        except AttributeError:
            bc_base = frame.bc_base = self.code_addr(frame.code)
        bc_addr = bc_base + 2 * (frame.pc - 1)
        m = self.machine
        stack = frame.stack
        if m.suppressed or m.clib_depth or not stack:
            self._dispatch_entry(_OP_RETURN_VALUE, bc_addr)
            return BaseVM.op_return_value(self, frame, arg)
        idx = len(stack) - 1
        pop_slot = frame.addr + _FRAME_HEADER \
            + 8 * (idx % _FRAME_STACK_SLOTS)
        entry = self._t_return
        if entry is None:
            entry = self._t_return = self._record_entry(
                lambda v: self._rows_op_return(v[0], v[1]),
                [bc_addr, pop_slot], ())
        if entry is False:
            self._dispatch_entry(_OP_RETURN_VALUE, bc_addr)
            return BaseVM.op_return_value(self, frame, arg)
        m.origin = self._handler_site_by_op[_OP_RETURN_VALUE]
        self._q_append(entry[0])
        self._q_extend((bc_addr, pop_slot))
        if len(self._q_order) >= _FLUSH_ENTRIES:
            self._eng.flush()
        result = stack.pop()
        # Teardown matches the scalar handler from the pop onward.
        for obj in frame.locals:
            if obj is not None:
                self.emit_decref(obj)
        for obj in stack:
            self.emit_decref(obj)
        stack.clear()
        m.alu(self.s_funcsetup + 20, _FUNC_SETUP, n=3)
        self.free_frame(frame)
        self.frames.pop()
        if not self.frames:
            self._module_result = result
            return _FRAME_RETURNED
        caller = self.frames[-1]
        discard_return, push_value = self._return_plans.pop()
        if discard_return:
            self.emit_decref(result)
            if push_value is not None:
                self.emit_push(caller, push_value)
        else:
            self.emit_push(caller, result)
        self.gc_poll()
        return _FRAME_RETURNED

    def _rows_op_subscr(self, values: list) -> None:
        """Sequence int-index BINARY_SUBSCR: pops, getitem call, push.

        ``values`` is ``[bc_addr, index_slot, container_slot,
        container_addr, index_addr, elem_addr, result_addr,
        push_slot]``.
        """
        m = self.machine
        self._rows_dispatch(_OP_BINARY_SUBSCR, values[0])
        self._rows_pop(values[1])
        self._rows_pop(values[2])
        self._rows_typecheck(values[3], 1)
        with m.c_call("ceval.call_getitem", "abstract.getitem",
                      indirect=True, args=2, saves=2):
            m.load(self.s_box, _BOX, values[4] + 16)  # unbox the index
            self._rows_error_check(False)
            m.load(self.s_exec + 64, _EXEC, values[5])
        if self.refcounting:
            self._rows_incref(values[6])
            self._rows_decref(values[3])
            self._rows_decref(values[4])
        self._rows_push(values[7])

    def _burst_op_binary_subscr(self, frame: Frame, arg: int) -> int:
        try:
            bc_base = frame.bc_base
        except AttributeError:
            bc_base = frame.bc_base = self.code_addr(frame.code)
        bc_addr = bc_base + 2 * (frame.pc - 1)
        m = self.machine
        stack = frame.stack
        if m.suppressed or m.clib_depth or len(stack) < 2:
            self._dispatch_entry(_OP_BINARY_SUBSCR, bc_addr)
            return BaseVM.op_binary_subscr(self, frame, arg)
        index = stack[-1]
        container = stack[-2]
        if (not isinstance(container, (PyList, PyTuple))
                or not isinstance(index, (PyInt, PyBool))):
            self._dispatch_entry(_OP_BINARY_SUBSCR, bc_addr)
            return BaseVM.op_binary_subscr(self, frame, arg)
        items = container.items
        i = int(index.value)
        if i < 0:
            i += len(items)
        if not 0 <= i < len(items):  # IndexError path stays scalar
            self._dispatch_entry(_OP_BINARY_SUBSCR, bc_addr)
            return BaseVM.op_binary_subscr(self, frame, arg)
        if self.refcounting and (container.refcount == 1
                                 or index.refcount == 1):
            # A dealloc cascade must interleave mid-sequence; only the
            # scalar path preserves that ordering.
            self._dispatch_entry(_OP_BINARY_SUBSCR, bc_addr)
            return BaseVM.op_binary_subscr(self, frame, arg)
        result = items[i]
        elem_base = (container.buffer_addr
                     if isinstance(container, PyList)
                     else container.addr + 24)
        idx = len(stack) - 1
        base_addr = frame.addr + _FRAME_HEADER
        pop_idx = base_addr + 8 * (idx % _FRAME_STACK_SLOTS)
        pop_cont = base_addr + 8 * ((idx - 1) % _FRAME_STACK_SLOTS)
        values = [bc_addr, pop_idx, pop_cont, container.addr,
                  index.addr, elem_base + 8 * i, result.addr, pop_cont]
        entry = self._t_subscr
        if entry is None:
            entry = self._t_subscr = self._record_entry(
                lambda v: self._rows_op_subscr(v), values, ("sp",))
        if entry is False:
            self._dispatch_entry(_OP_BINARY_SUBSCR, bc_addr)
            return BaseVM.op_binary_subscr(self, frame, arg)
        m.origin = self._handler_site_by_op[_OP_BINARY_SUBSCR]
        self._q_append(entry[0])
        self._q_extend(values)
        self._q_dyn_append(m.sp)
        if len(self._q_order) >= _FLUSH_ENTRIES:
            self._eng.flush()
        stack.pop()
        stack.pop()
        if self.refcounting:
            self.retain(result)
            self.release(container)
            self.release(index)
        stack.append(result)
        return _NEXT

    def _rows_call_prologue(self, op: int, n_pops: int, alu_off: int,
                            n_branches: int, incref: bool,
                            values: list) -> None:
        """Dispatch + operand pops + callee typecheck for a call op.

        ``values`` is ``[bc_addr, slot_0..slot_{n_pops-1}, callee_addr,
        instance_addr]`` (the instance slot is present but unused when
        ``incref`` is false).
        """
        m = self.machine
        self._rows_dispatch(op, values[0])
        for j in range(1, n_pops + 1):
            self._rows_pop(values[j])
        m.alu(self.s_funcsetup + alu_off, _FUNC_SETUP, n=2)
        self._rows_typecheck(values[n_pops + 1], n_branches)
        if incref and self.refcounting:
            self._rows_incref(values[n_pops + 2])

    def _rows_call_setup(self, frame_addr: int, argcount: int) -> None:
        """Argument copies into callee locals plus the frame-link ALU."""
        m = self.machine
        local0 = frame_addr + _FRAME_HEADER + 8 * _FRAME_STACK_SLOTS
        for i in range(argcount):
            m.store(self.s_funcsetup + 12, _FUNC_SETUP, local0 + 8 * i)
        m.alu(self.s_funcsetup + 16, _FUNC_SETUP, n=3)

    def _call_setup_entry(self, argcount: int, sample_addr: int):
        entry = self._t_call_setup.get(argcount)
        if entry is None:
            entry = self._t_call_setup[argcount] = self._record_entry(
                lambda v, k=argcount: self._rows_call_setup(v[0], k),
                [sample_addr], ("origin",))
        return entry

    def _burst_op_call_method(self, frame: Frame, arg: int) -> int:
        try:
            bc_base = frame.bc_base
        except AttributeError:
            bc_base = frame.bc_base = self.code_addr(frame.code)
        bc_addr = bc_base + 2 * (frame.pc - 1)
        m = self.machine
        stack = frame.stack
        top = len(stack)
        callee = stack[top - 1 - arg] if top > arg else None
        if (m.suppressed or m.clib_depth
                or not isinstance(callee, PyBoundMethod)):
            self._dispatch_entry(_OP_CALL_METHOD, bc_addr)
            return BaseVM.op_call_method(self, frame, arg)
        code = callee.func.code
        if code.argcount != arg + 1:
            self._dispatch_entry(_OP_CALL_METHOD, bc_addr)
            return BaseVM.op_call_method(self, frame, arg)
        base_addr = frame.addr + _FRAME_HEADER
        slots = [base_addr + 8 * ((top - 1 - i) % _FRAME_STACK_SLOTS)
                 for i in range(arg + 1)]
        entry = self._t_call_method.get(arg)
        if entry is None:
            entry = self._t_call_method[arg] = self._record_entry(
                lambda v, n=arg + 1: self._rows_call_prologue(
                    _OP_CALL_METHOD, n, 24, 1, True, v),
                [bc_addr] + slots + [callee.addr, callee.instance.addr],
                ())
        entry2 = self._call_setup_entry(arg + 1, frame.addr)
        if entry is False or entry2 is False:
            self._dispatch_entry(_OP_CALL_METHOD, bc_addr)
            return BaseVM.op_call_method(self, frame, arg)
        m.origin = self._handler_site_by_op[_OP_CALL_METHOD]
        self._q_append(entry[0])
        self._q_dyn_append(bc_addr)
        self._q_extend(slots)
        self._q_extend((callee.addr, callee.instance.addr))
        if len(self._q_order) >= _FLUSH_ENTRIES:
            self._eng.flush()
        args = stack[top - arg:]
        del stack[top - arg - 1:]
        if self.refcounting:
            self.retain(callee.instance)
        self.stats.guest_calls += 1
        callee_frame = self.make_frame(code)
        locals_ = callee_frame.locals
        locals_[0] = callee.instance
        for i, arg_obj in enumerate(args):
            locals_[i + 1] = arg_obj
        self._q_append(entry2[0])
        self._q_extend((callee_frame.addr, m.origin))
        if len(self._q_order) >= _FLUSH_ENTRIES:
            self._eng.flush()
        callee_frame.return_to = len(stack)
        self._return_plans.append((False, None))
        self.frames.append(callee_frame)
        self.emit_decref(callee)
        return _FRAME_PUSHED

    def _burst_op_call_function(self, frame: Frame, arg: int) -> int:
        try:
            bc_base = frame.bc_base
        except AttributeError:
            bc_base = frame.bc_base = self.code_addr(frame.code)
        bc_addr = bc_base + 2 * (frame.pc - 1)
        m = self.machine
        stack = frame.stack
        top = len(stack)
        callee = stack[top - 1 - arg] if top > arg else None
        if m.suppressed or m.clib_depth:
            self._dispatch_entry(_OP_CALL_FUNCTION, bc_addr)
            return BaseVM.op_call_function(self, frame, arg)
        if isinstance(callee, PyFunc):
            init = None
            code = callee.code
            if code.argcount != arg:
                self._dispatch_entry(_OP_CALL_FUNCTION, bc_addr)
                return BaseVM.op_call_function(self, frame, arg)
        elif isinstance(callee, PyClass):
            # Constructor: the prologue rows are identical to the plain
            # function-call shape; allocation, refcount traffic and the
            # callee frame go through the already-templated helpers.
            init = callee.methods.get("__init__")
            if init is None or not isinstance(init, PyFunc) \
                    or init.code.argcount != arg + 1:
                self._dispatch_entry(_OP_CALL_FUNCTION, bc_addr)
                return BaseVM.op_call_function(self, frame, arg)
            code = init.code
        else:
            self._dispatch_entry(_OP_CALL_FUNCTION, bc_addr)
            return BaseVM.op_call_function(self, frame, arg)
        base_addr = frame.addr + _FRAME_HEADER
        slots = [base_addr + 8 * ((top - 1 - i) % _FRAME_STACK_SLOTS)
                 for i in range(arg + 1)]
        entry = self._t_call_function.get(arg)
        if entry is None:
            entry = self._t_call_function[arg] = self._record_entry(
                lambda v, n=arg + 1: self._rows_call_prologue(
                    _OP_CALL_FUNCTION, n, 0, 2, False, v),
                [bc_addr] + slots + [callee.addr, 0], ())
        entry2 = self._call_setup_entry(code.argcount, frame.addr)
        if entry is False or entry2 is False:
            self._dispatch_entry(_OP_CALL_FUNCTION, bc_addr)
            return BaseVM.op_call_function(self, frame, arg)
        m.origin = self._handler_site_by_op[_OP_CALL_FUNCTION]
        self._q_append(entry[0])
        self._q_dyn_append(bc_addr)
        self._q_extend(slots)
        self._q_extend((callee.addr, 0))
        if len(self._q_order) >= _FLUSH_ENTRIES:
            self._eng.flush()
        args = stack[top - arg:]
        del stack[top - arg - 1:]
        if init is not None:
            instance = PyInstance(callee)
            self.alloc_object(instance)
            self.emit_decref(callee)
            self.emit_incref(instance)
            self.stats.guest_calls += 1
            callee_frame = self.make_frame(code)
            locals_ = callee_frame.locals
            locals_[0] = instance
            for i, arg_obj in enumerate(args):
                locals_[i + 1] = arg_obj
        else:
            instance = None
            self.stats.guest_calls += 1
            callee_frame = self.make_frame(code)
            locals_ = callee_frame.locals
            for i, arg_obj in enumerate(args):
                locals_[i] = arg_obj
        self._q_append(entry2[0])
        self._q_extend((callee_frame.addr, m.origin))
        if len(self._q_order) >= _FLUSH_ENTRIES:
            self._eng.flush()
        callee_frame.return_to = len(stack)
        self._return_plans.append(
            (True, instance) if init is not None else (False, None))
        self.frames.append(callee_frame)
        return _FRAME_PUSHED

    def _rows_op_jump(self, bc_addr: int) -> None:
        self._rows_dispatch(_OP_JUMP_ABSOLUTE, bc_addr)
        self.machine.branch(self.s_rich + 12, _DISPATCH, taken=True,
                            conditional=False)

    def _burst_op_jump_absolute(self, frame: Frame, arg: int) -> int:
        try:
            bc_base = frame.bc_base
        except AttributeError:
            bc_base = frame.bc_base = self.code_addr(frame.code)
        bc_addr = bc_base + 2 * (frame.pc - 1)
        m = self.machine
        if m.suppressed or m.clib_depth:
            self._dispatch_entry(_OP_JUMP_ABSOLUTE, bc_addr)
            return BaseVM.op_jump_absolute(self, frame, arg)
        entry = self._t_jump
        if entry is None:
            entry = self._t_jump = self._record_entry(
                lambda v: self._rows_op_jump(v[0]), [bc_addr], ())
        if entry is False:
            self._dispatch_entry(_OP_JUMP_ABSOLUTE, bc_addr)
            return BaseVM.op_jump_absolute(self, frame, arg)
        m.origin = self._handler_site_by_op[_OP_JUMP_ABSOLUTE]
        self._q_append(entry[0])
        self._q_dyn_append(bc_addr)
        if len(self._q_order) >= _FLUSH_ENTRIES:
            self._eng.flush()
        if arg < frame.pc:
            self.on_backedge(frame, arg)
        frame.pc = arg
        return _NEXT

    # ------------------------------------------------------------------
    # Boxing
    # ------------------------------------------------------------------

    def make_int(self, value: int) -> PyInt:
        if SMALL_INT_MIN <= value <= SMALL_INT_MAX:
            cached = self._small_ints[value]
            self.machine.alu(self.s_box + 16, _BOX, n=1)
            return cached
        obj = PyInt(value)
        self.alloc_object(obj)
        self.emit_box_store(obj)
        return obj

    def make_float(self, value: float) -> PyFloat:
        obj = PyFloat(value)
        self.alloc_object(obj)
        self.emit_box_store(obj)
        return obj

    def make_bool(self, value: bool) -> PyBool:
        self.machine.alu(self.s_box + 20, _BOX, n=1)
        return TRUE if value else FALSE

    def make_str(self, value: str) -> PyStr:
        obj = PyStr(value)
        self.alloc_object(obj)
        if value:
            self.machine.touch_range(self.s_exec + 16, _EXEC,
                                     obj.addr + 32, len(value), write=True)
        return obj

    def make_list(self, items: list[GuestObject]) -> PyList:
        obj = PyList(items)
        self.alloc_object(obj)
        obj.buffer_addr = self.alloc_buffer(obj.buffer_bytes())
        m = self.machine
        for i, item in enumerate(items):
            m.store(self.s_exec + 20, _EXEC, obj.buffer_addr + 8 * i)
            _ = item
        return obj

    def make_tuple(self, items: tuple[GuestObject, ...]) -> PyTuple:
        obj = PyTuple(items)
        self.alloc_object(obj)
        m = self.machine
        for i in range(len(items)):
            m.store(self.s_exec + 24, _EXEC, obj.addr + 24 + 8 * i)
        return obj

    def make_dict(self) -> PyDict:
        obj = PyDict()
        self.alloc_object(obj)
        obj.table_addr = self.alloc_buffer(obj.table_bytes())
        return obj

    def box_const(self, value: object) -> GuestObject:
        """Box a compile-time constant (interned, immortal)."""
        if isinstance(value, bool):
            return TRUE if value else FALSE
        if value is None:
            return NONE
        if isinstance(value, int):
            if SMALL_INT_MIN <= value <= SMALL_INT_MAX:
                return self._small_ints[value]
            obj = PyInt(value)
            self._make_immortal(obj)
            return obj
        if isinstance(value, float):
            obj = PyFloat(value)
            self._make_immortal(obj)
            return obj
        if isinstance(value, str):
            return self.intern_str(value)
        raise VMError(f"cannot box constant {value!r}")

    # ------------------------------------------------------------------
    # Frames and the main loop
    # ------------------------------------------------------------------

    def make_frame(self, code: CodeObject) -> Frame:
        frame = Frame(code, 0)
        frame.bc_base = self.code_addr(code)
        frame.addr = self.alloc_frame(frame)
        return frame

    def alloc_frame(self, frame: Frame) -> int:
        """Allocate frame storage; emission tagged function setup/cleanup."""
        raise NotImplementedError

    def free_frame(self, frame: Frame) -> None:
        """Release frame storage on return."""
        raise NotImplementedError

    def run(self) -> RunStats:
        """Execute the program's module code to completion."""
        const_objects = {}
        for code in self.program.code_objects():
            const_objects[id(code)] = [
                self.box_const(value) for value in code.consts]
        self._const_objects = const_objects
        module_frame = self.make_frame(self.program.module)
        self.frames.append(module_frame)
        self.run_frames()
        return self.stats

    def run_frames(self) -> None:
        """Drive the frame stack until the bottom frame returns."""
        base_depth = len(self.frames) - 1
        while len(self.frames) > base_depth:
            frame = self.frames[-1]
            self.execute_frame(frame)

    def execute_frame(self, frame: Frame) -> None:
        """Run one frame until it pushes a callee frame or returns."""
        handlers = self._handlers
        ops = frame.code.ops
        args = frame.code.args
        stats = self.stats
        machine = self.machine
        budget_mask = 0x3FF
        while True:
            op = ops[frame.pc]
            arg = args[frame.pc]
            self.emit_dispatch(frame, op)
            frame.pc += 1
            stats.bytecodes += 1
            if not (stats.bytecodes & budget_mask):
                machine.check_budget()
            signal = handlers[op](frame, arg)
            if signal:
                return

    def _build_handler_table(self) -> list:
        table: list = [None] * 96
        for op in Op:
            method = getattr(self, f"op_{op.name.lower()}", None)
            if method is None:
                raise VMError(f"missing handler for {op.name}")
            table[int(op)] = method
        return table

    # ------------------------------------------------------------------
    # Handlers: stack and constants
    # ------------------------------------------------------------------

    def op_load_const(self, frame: Frame, arg: int) -> int:
        m = self.machine
        code_addr = self.code_addr(frame.code)
        m.alu(self.s_regxfer + 4, _REG, n=1)
        m.load(self.s_const, _CONST, code_addr + 64 + 8 * arg)
        obj = self._const_objects[id(frame.code)][arg]
        self.emit_incref(obj)
        self.emit_push(frame, obj)
        return _NEXT

    def op_pop_top(self, frame: Frame, arg: int) -> int:
        obj = self.emit_pop(frame)
        self.emit_decref(obj)
        return _NEXT

    def op_dup_top(self, frame: Frame, arg: int) -> int:
        obj = self.emit_peek(frame)
        self.emit_incref(obj)
        self.emit_push(frame, obj)
        return _NEXT

    def op_rot_two(self, frame: Frame, arg: int) -> int:
        m = self.machine
        m.load(self.s_stack + 40, _STACK, frame.stack_addr(0))
        m.load(self.s_stack + 44, _STACK, frame.stack_addr(1))
        m.store(self.s_stack + 48, _STACK, frame.stack_addr(0))
        m.store(self.s_stack + 52, _STACK, frame.stack_addr(1))
        stack = frame.stack
        stack[-1], stack[-2] = stack[-2], stack[-1]
        return _NEXT

    # ------------------------------------------------------------------
    # Handlers: variables
    # ------------------------------------------------------------------

    def op_load_fast(self, frame: Frame, arg: int) -> int:
        m = self.machine
        m.alu(self.s_regxfer + 8, _REG, n=1)
        m.load(self.s_stack + 56, _STACK, frame.local_addr(arg))
        obj = frame.locals[arg]
        if obj is None:
            name = frame.code.varnames[arg]
            raise GuestNameError(
                f"local variable {name!r} referenced before assignment")
        self.emit_error_check(taken=False)
        self.emit_incref(obj)
        self.emit_push(frame, obj)
        return _NEXT

    def op_store_fast(self, frame: Frame, arg: int) -> int:
        obj = self.emit_pop(frame)
        m = self.machine
        m.alu(self.s_regxfer + 12, _REG, n=1)
        old = frame.locals[arg]
        m.store(self.s_stack + 60, _STACK, frame.local_addr(arg))
        frame.locals[arg] = obj
        if old is not None:
            self.emit_decref(old)
        return _NEXT

    def op_load_global(self, frame: Frame, arg: int) -> int:
        name = frame.code.names[arg]
        obj = self.lookup_global(name)
        self.emit_incref(obj)
        self.emit_push(frame, obj)
        return _NEXT

    def lookup_global(self, name: str) -> GuestObject:
        """Globals then builtins, through the shared lookdict helper."""
        m = self.machine
        m.origin = m.site("ceval.handler.LOAD_GLOBAL")
        if self.global_cache_enabled:
            # Inline cache: version check plus a direct cell load — the
            # optimization Chandra et al. propose and the paper cites as
            # the fix for name-resolution overhead.
            m.load(self.s_name + 24, _NAME,
                   m.space.vm_data.base + 0x800 + (stable_hash(name) & 0xF8))
            m.branch(self.s_name + 28, _NAME, taken=False)
            m.load(self.s_name + 32, _NAME,
                   m.space.vm_data.base + 0x840 + (stable_hash(name) & 0xF8))
            obj = self.globals.get(name)
            if obj is None:
                obj = self.builtins.get(name)
            if obj is None:
                raise GuestNameError(f"name {name!r} is not defined")
            return obj
        # Fetch the interned name object and mix its cached hash.
        m.alu(self.s_name, _NAME, n=4)
        m.load(self.s_name + 16, _NAME,
               self.machine.space.vm_data.base + 0x900
               + (stable_hash(name) & 0xFF8))
        table = self.machine.space.vm_data.base + 0x1000
        self.dict_lookup_emit(table, stable_hash(name))
        obj = self.globals.get(name)
        if obj is not None:
            return obj
        # Miss in globals: second lookup in builtins.
        m.branch(self.s_name + 8, _NAME, taken=True)
        self.dict_lookup_emit(table + 0x8000, stable_hash(name))
        obj = self.builtins.get(name)
        if obj is None:
            raise GuestNameError(f"name {name!r} is not defined")
        return obj

    def op_store_global(self, frame: Frame, arg: int) -> int:
        name = frame.code.names[arg]
        obj = self.emit_pop(frame)
        m = self.machine
        m.alu(self.s_name + 12, _NAME, n=2)
        table = self.machine.space.vm_data.base + 0x1000
        self.dict_lookup_emit(table, stable_hash(name))
        m.store(self.s_name + 20, _NAME, table + 24 * (stable_hash(name) & 1023))
        old = self.globals.get(name)
        self.globals[name] = obj
        if old is not None:
            self.emit_decref(old)
        return _NEXT

    # ------------------------------------------------------------------
    # Handlers: binary and unary operators
    # ------------------------------------------------------------------

    _NUMERIC_OPS = {
        int(Op.BINARY_ADD): "add", int(Op.BINARY_SUB): "sub",
        int(Op.BINARY_MUL): "mul", int(Op.BINARY_TRUEDIV): "truediv",
        int(Op.BINARY_FLOORDIV): "floordiv", int(Op.BINARY_MOD): "mod",
        int(Op.BINARY_POW): "pow", int(Op.BINARY_AND): "and",
        int(Op.BINARY_OR): "or", int(Op.BINARY_XOR): "xor",
        int(Op.BINARY_LSHIFT): "lshift", int(Op.BINARY_RSHIFT): "rshift",
    }

    def _binary_common(self, frame: Frame, op_name: str) -> int:
        """Shared implementation of all binary numeric/sequence operators."""
        right = self.emit_pop(frame)
        left = self.emit_pop(frame)
        m = self.machine
        # Type checks on both operands to select the operation.
        self.emit_typecheck(left, n_branches=1)
        self.emit_typecheck(right, n_branches=1)
        # Function resolution: load tp_as_number->nb_<op> pointer.
        m.load(self.s_funcres, _FUNC_RES, left.addr)
        m.load(self.s_funcres + 8, _FUNC_RES,
               self.machine.space.vm_data.base + 0x2000)
        m.alu(self.s_funcres + 12, _FUNC_RES, n=1)
        result = None
        with m.c_call(f"ceval.call_binop_{op_name}",
                      f"abstract.binary_{op_name}", indirect=True,
                      args=2, saves=2):
            result = self._binary_semantics(left, right, op_name)
        self.emit_decref(left)
        self.emit_decref(right)
        self.emit_push(frame, result)
        return _NEXT

    def _binary_semantics(self, left: GuestObject, right: GuestObject,
                          op_name: str) -> GuestObject:
        """Perform the real operation and emit its core-work instructions."""
        m = self.machine
        if isinstance(left, (PyInt, PyBool)) and \
                isinstance(right, (PyInt, PyBool)):
            self.emit_unbox(left)
            self.emit_unbox(right)
            lv = int(left.value)
            rv = int(right.value)
            value = self._int_op(op_name, lv, rv)
            self.emit_error_check(taken=False)  # overflow check
            if op_name == "truediv":
                return self.make_float(value)
            return self.make_int(value)
        if isinstance(left, (PyFloat, PyInt, PyBool)) and \
                isinstance(right, (PyFloat, PyInt, PyBool)):
            self.emit_unbox(left)
            self.emit_unbox(right)
            lv = float(left.value)
            rv = float(right.value)
            value = self._float_op(op_name, lv, rv)
            self.emit_error_check(taken=False)
            return self.make_float(value)
        if isinstance(left, PyStr) and isinstance(right, PyStr) and \
                op_name == "add":
            result = PyStr(left.value + right.value)
            self.alloc_object(result)
            m.touch_range(self.s_exec + 28, _EXEC, result.addr + 32,
                          len(result.value), write=True)
            m.touch_range(self.s_exec + 32, _EXEC, left.addr + 32,
                          len(left.value))
            m.touch_range(self.s_exec + 32, _EXEC, right.addr + 32,
                          len(right.value))
            return result
        if isinstance(left, PyStr) and isinstance(right, (PyInt, PyBool)) \
                and op_name == "mul":
            result = PyStr(left.value * int(right.value))
            self.alloc_object(result)
            m.touch_range(self.s_exec + 28, _EXEC, result.addr + 32,
                          len(result.value), write=True)
            return result
        if isinstance(left, PyList) and isinstance(right, PyList) and \
                op_name == "add":
            items = list(left.items) + list(right.items)
            for item in items:
                self.emit_incref(item)
            return self.make_list(items)
        if isinstance(left, PyList) and isinstance(right, (PyInt, PyBool)) \
                and op_name == "mul":
            items = list(left.items) * int(right.value)
            for item in items:
                self.emit_incref(item)
            return self.make_list(items)
        if isinstance(left, PyTuple) and isinstance(right, PyTuple) and \
                op_name == "add":
            items = tuple(left.items) + tuple(right.items)
            for item in items:
                self.emit_incref(item)
            return self.make_tuple(items)
        raise GuestTypeError(
            f"unsupported operand types for {op_name}: "
            f"{left.type_name!r} and {right.type_name!r}")

    @staticmethod
    def _int_op(op_name: str, lv: int, rv: int):
        if op_name == "add":
            return lv + rv
        if op_name == "sub":
            return lv - rv
        if op_name == "mul":
            return lv * rv
        if op_name == "truediv":
            if rv == 0:
                raise GuestZeroDivisionError("division by zero")
            return lv / rv
        if op_name == "floordiv":
            if rv == 0:
                raise GuestZeroDivisionError("integer division by zero")
            return lv // rv
        if op_name == "mod":
            if rv == 0:
                raise GuestZeroDivisionError("integer modulo by zero")
            return lv % rv
        if op_name == "pow":
            return lv ** rv
        if op_name == "and":
            return lv & rv
        if op_name == "or":
            return lv | rv
        if op_name == "xor":
            return lv ^ rv
        if op_name == "lshift":
            return lv << rv
        if op_name == "rshift":
            return lv >> rv
        raise VMError(f"unknown int op {op_name}")

    @staticmethod
    def _float_op(op_name: str, lv: float, rv: float) -> float:
        if op_name == "add":
            return lv + rv
        if op_name == "sub":
            return lv - rv
        if op_name == "mul":
            return lv * rv
        if op_name == "truediv":
            if rv == 0.0:
                raise GuestZeroDivisionError("float division by zero")
            return lv / rv
        if op_name == "floordiv":
            if rv == 0.0:
                raise GuestZeroDivisionError("float division by zero")
            return lv // rv
        if op_name == "mod":
            if rv == 0.0:
                raise GuestZeroDivisionError("float modulo by zero")
            return lv % rv
        if op_name == "pow":
            return lv ** rv
        raise GuestTypeError(f"unsupported float operation: {op_name}")

    def op_binary_add(self, frame: Frame, arg: int) -> int:
        return self._binary_common(frame, "add")

    def op_binary_sub(self, frame: Frame, arg: int) -> int:
        return self._binary_common(frame, "sub")

    def op_binary_mul(self, frame: Frame, arg: int) -> int:
        return self._binary_common(frame, "mul")

    def op_binary_truediv(self, frame: Frame, arg: int) -> int:
        return self._binary_common(frame, "truediv")

    def op_binary_floordiv(self, frame: Frame, arg: int) -> int:
        return self._binary_common(frame, "floordiv")

    def op_binary_mod(self, frame: Frame, arg: int) -> int:
        return self._binary_common(frame, "mod")

    def op_binary_pow(self, frame: Frame, arg: int) -> int:
        return self._binary_common(frame, "pow")

    def op_binary_and(self, frame: Frame, arg: int) -> int:
        return self._binary_common(frame, "and")

    def op_binary_or(self, frame: Frame, arg: int) -> int:
        return self._binary_common(frame, "or")

    def op_binary_xor(self, frame: Frame, arg: int) -> int:
        return self._binary_common(frame, "xor")

    def op_binary_lshift(self, frame: Frame, arg: int) -> int:
        return self._binary_common(frame, "lshift")

    def op_binary_rshift(self, frame: Frame, arg: int) -> int:
        return self._binary_common(frame, "rshift")

    def op_unary_neg(self, frame: Frame, arg: int) -> int:
        obj = self.emit_pop(frame)
        self.emit_typecheck(obj)
        self.emit_unbox(obj)
        self.emit_execute_alu(1)
        if isinstance(obj, (PyInt, PyBool)):
            result = self.make_int(-int(obj.value))
        elif isinstance(obj, PyFloat):
            result = self.make_float(-obj.value)
        else:
            raise GuestTypeError(
                f"bad operand type for unary -: {obj.type_name!r}")
        self.emit_decref(obj)
        self.emit_push(frame, result)
        return _NEXT

    def op_unary_not(self, frame: Frame, arg: int) -> int:
        obj = self.emit_pop(frame)
        truthy = self.emit_truthiness(obj)
        self.emit_decref(obj)
        self.emit_push(frame, self.make_bool(not truthy))
        return _NEXT

    def emit_truthiness(self, obj: GuestObject) -> bool:
        """PyObject_IsTrue: type check plus a value/size load."""
        m = self.machine
        self.emit_typecheck(obj, n_branches=2)
        m.load(self.s_rich, _RICH, obj.addr + 16)
        m.alu(self.s_rich + 8, _RICH, n=1)
        return obj.is_truthy()

    def op_compare_op(self, frame: Frame, arg: int) -> int:
        symbol = COMPARE_OPS[arg]
        right = self.emit_pop(frame)
        left = self.emit_pop(frame)
        m = self.machine
        self.emit_typecheck(left)
        self.emit_typecheck(right)
        with m.c_call("ceval.call_cmp", "object.richcompare",
                      indirect=True, args=3, saves=2):
            result = self._compare_semantics(left, right, symbol)
        self.emit_decref(left)
        self.emit_decref(right)
        self.emit_push(frame, self.make_bool(result))
        return _NEXT

    def _compare_semantics(self, left: GuestObject, right: GuestObject,
                           symbol: str) -> bool:
        self.emit_unbox(left)
        self.emit_unbox(right)
        self.emit_execute_alu(1)
        if symbol == "is":
            return left is right or (
                isinstance(left, PyNone) and isinstance(right, PyNone))
        if symbol == "is not":
            return not self._compare_semantics(left, right, "is")
        if symbol in ("in", "not in"):
            contains = self._contains_semantics(right, left)
            return contains if symbol == "in" else not contains
        lv = self._comparable_value(left)
        rv = self._comparable_value(right)
        try:
            if symbol == "<":
                return lv < rv
            if symbol == "<=":
                return lv <= rv
            if symbol == ">":
                return lv > rv
            if symbol == ">=":
                return lv >= rv
            if symbol == "==":
                return lv == rv
            if symbol == "!=":
                return lv != rv
        except TypeError as exc:
            raise GuestTypeError(str(exc)) from exc
        raise VMError(f"unknown comparison {symbol}")

    def _comparable_value(self, obj: GuestObject):
        if isinstance(obj, (PyInt, PyFloat, PyStr)):
            return obj.value
        if isinstance(obj, PyBool):
            return int(obj.value)
        if isinstance(obj, PyNone):
            return None
        if isinstance(obj, (PyList, PyTuple)):
            m = self.machine
            m.touch_range(self.s_exec + 36, _EXEC,
                          obj.addr, min(64, 8 * len(obj.items) + 24))
            container = list if isinstance(obj, PyList) else tuple
            return container(self._comparable_value(i) for i in obj.items)
        return ("id", id(obj))

    def _contains_semantics(self, container: GuestObject,
                            item: GuestObject) -> bool:
        m = self.machine
        if isinstance(container, PyDict):
            m.origin = m.site("ceval.handler.COMPARE_OP.contains")
            self.dict_lookup_emit(container.table_addr,
                                  stable_hash(str(raw_key(item))))
            return raw_key(item) in container.entries
        if isinstance(container, (PyList, PyTuple)):
            key = self._comparable_value(item)
            for i, element in enumerate(container.items):
                m.load(self.s_exec + 40, _EXEC,
                       (container.buffer_addr if isinstance(
                           container, PyList) else container.addr + 24)
                       + 8 * i)
                m.branch(self.s_exec + 44, _EXEC, taken=False)
                if self._comparable_value(element) == key:
                    return True
            return False
        if isinstance(container, PyStr) and isinstance(item, PyStr):
            m.touch_range(self.s_exec + 48, _EXEC, container.addr + 32,
                          len(container.value))
            return item.value in container.value
        raise GuestTypeError(
            f"argument of type {container.type_name!r} is not iterable")

    # ------------------------------------------------------------------
    # Handlers: control flow
    # ------------------------------------------------------------------

    def op_jump_absolute(self, frame: Frame, arg: int) -> int:
        self.machine.branch(self.s_rich + 12, _DISPATCH, taken=True,
                            conditional=False)
        if arg < frame.pc:
            self.on_backedge(frame, arg)
        frame.pc = arg
        return _NEXT

    def on_backedge(self, frame: Frame, target: int) -> None:
        """Loop back-edge hook; the PyPy JIT overrides this."""

    def _conditional_jump(self, frame: Frame, arg: int,
                          jump_if: bool) -> int:
        obj = self.emit_pop(frame)
        truthy = self.emit_truthiness(obj)
        self.emit_decref(obj)
        taken = truthy == jump_if
        self.machine.branch(self.s_rich + 16, _RICH, taken=taken)
        if taken:
            if arg < frame.pc:
                self.on_backedge(frame, arg)
            frame.pc = arg
        return _NEXT

    def op_pop_jump_if_false(self, frame: Frame, arg: int) -> int:
        return self._conditional_jump(frame, arg, jump_if=False)

    def op_pop_jump_if_true(self, frame: Frame, arg: int) -> int:
        return self._conditional_jump(frame, arg, jump_if=True)

    def _short_circuit(self, frame: Frame, arg: int, jump_if: bool) -> int:
        obj = self.emit_peek(frame)
        truthy = self.emit_truthiness(obj)
        taken = truthy == jump_if
        self.machine.branch(self.s_rich + 20, _RICH, taken=taken)
        if taken:
            frame.pc = arg
        else:
            popped = self.emit_pop(frame)
            self.emit_decref(popped)
        return _NEXT

    def op_jump_if_false_or_pop(self, frame: Frame, arg: int) -> int:
        return self._short_circuit(frame, arg, jump_if=False)

    def op_jump_if_true_or_pop(self, frame: Frame, arg: int) -> int:
        return self._short_circuit(frame, arg, jump_if=True)

    def op_setup_loop(self, frame: Frame, arg: int) -> int:
        m = self.machine
        # Push a block: write the block-stack entry (type, handler, level).
        base = frame.addr + 32
        m.store(self.s_rich + 24, _RICH, base + 16 * len(frame.blocks))
        m.store(self.s_rich + 28, _RICH, base + 16 * len(frame.blocks) + 8)
        m.alu(self.s_rich + 32, _RICH, n=1)
        frame.blocks.append((arg, len(frame.stack)))
        return _NEXT

    def op_pop_block(self, frame: Frame, arg: int) -> int:
        m = self.machine
        m.load(self.s_rich + 36, _RICH,
               frame.addr + 32 + 16 * (len(frame.blocks) - 1))
        m.alu(self.s_rich + 40, _RICH, n=1)
        if not frame.blocks:
            raise VMError("POP_BLOCK with empty block stack")
        frame.blocks.pop()
        return _NEXT

    def op_break_loop(self, frame: Frame, arg: int) -> int:
        m = self.machine
        if not frame.blocks:
            raise VMError("BREAK_LOOP outside loop")
        m.load(self.s_rich + 44, _RICH,
               frame.addr + 32 + 16 * (len(frame.blocks) - 1))
        m.alu(self.s_rich + 48, _RICH, n=2)
        m.branch(self.s_rich + 56, _RICH, taken=True, conditional=False)
        target, level = frame.blocks.pop()
        # Unwind the value stack to the block's level (CPython pops the
        # loop iterator and any partial expression state on break).
        while len(frame.stack) > level:
            leftover = self.emit_pop(frame)
            self.emit_decref(leftover)
        frame.pc = target
        return _NEXT

    def op_get_iter(self, frame: Frame, arg: int) -> int:
        obj = self.emit_pop(frame)
        m = self.machine
        self.emit_typecheck(obj, n_branches=2)
        m.load(self.s_funcres + 16, _FUNC_RES, obj.addr)  # tp_iter
        with m.c_call("ceval.call_getiter", "object.getiter",
                      indirect=True, args=1, saves=1):
            iterator = self._make_iterator(obj)
        self.emit_decref(obj)
        self.emit_push(frame, iterator)
        return _NEXT

    def _make_iterator(self, obj: GuestObject) -> PyIterator:
        if isinstance(obj, PyList):
            iterator = PyIterator("list", obj)
        elif isinstance(obj, PyTuple):
            iterator = PyIterator("tuple", obj)
        elif isinstance(obj, PyRange):
            iterator = PyIterator("range", obj)
        elif isinstance(obj, PyStr):
            iterator = PyIterator("str", obj)
        elif isinstance(obj, PyDict):
            iterator = PyIterator("dict", obj)
        elif isinstance(obj, PyIterator):
            return obj
        else:
            raise GuestTypeError(
                f"{obj.type_name!r} object is not iterable")
        self.alloc_object(iterator)
        return iterator

    def op_for_iter(self, frame: Frame, arg: int) -> int:
        iterator = self.emit_peek(frame)
        if not isinstance(iterator, PyIterator):
            raise VMError("FOR_ITER on non-iterator")
        m = self.machine
        m.load(self.s_funcres + 20, _FUNC_RES, iterator.addr)
        with m.c_call("ceval.call_iternext", "object.iternext",
                      indirect=True, args=1, saves=1):
            value = self._iterator_next(iterator)
            m.load(self.s_exec + 52, _EXEC, iterator.addr + 16)
            m.alu(self.s_exec + 56, _EXEC, n=1)
        exhausted = value is None
        m.branch(self.s_rich + 60, _RICH, taken=exhausted)
        if exhausted:
            popped = self.emit_pop(frame)
            self.emit_decref(popped)
            frame.pc = arg
        else:
            self.emit_push(frame, value)
        return _NEXT

    def _iterator_next(self, iterator: PyIterator) -> GuestObject | None:
        kind = iterator.kind
        source = iterator.source
        index = iterator.index
        if kind == "range":
            assert isinstance(source, PyRange)
            value = source.start + index * source.step
            in_range = (value < source.stop if source.step > 0
                        else value > source.stop)
            if not in_range:
                return None
            iterator.index += 1
            return self.make_int(value)
        if kind in ("list", "tuple"):
            items = source.items
            if index >= len(items):
                return None
            iterator.index += 1
            item = items[index]
            self.emit_incref(item)
            return item
        if kind == "str":
            text = source.value
            if index >= len(text):
                return None
            iterator.index += 1
            return self.make_str(text[index])
        if kind == "dict":
            entries = list(source.entries.values())
            if index >= len(entries):
                return None
            iterator.index += 1
            key_obj = entries[index][0]
            self.emit_incref(key_obj)
            return key_obj
        raise VMError(f"unknown iterator kind {kind!r}")

    # ------------------------------------------------------------------
    # Handlers: calls
    # ------------------------------------------------------------------

    def op_call_function(self, frame: Frame, arg: int) -> int:
        m = self.machine
        args = [self.emit_pop(frame) for _ in range(arg)]
        args.reverse()
        callee = self.emit_pop(frame)
        # Determine the function type (Python vs C vs class vs method).
        m.alu(self.s_funcsetup, _FUNC_SETUP, n=2)
        self.emit_typecheck(callee, n_branches=2)
        return self._call_object(frame, callee, args)

    def _call_object(self, frame: Frame, callee: GuestObject,
                     args: list[GuestObject]) -> int:
        m = self.machine
        if isinstance(callee, PyFunc):
            return self._call_guest(frame, callee, args)
        if isinstance(callee, PyBuiltin):
            self.stats.c_library_calls += 1
            if m.suppressed and callee.inline_ok:
                # A compiled trace inlines core object-protocol helpers:
                # only the handler's own data traffic is emitted.
                with m.unsuppressed():
                    result = callee.handler(self, args)
            elif callee.clib:
                # External C library call: everything inside is C library
                # time; the boundary call itself is C-call overhead. The
                # JIT cannot inline it (Section IV-C.2), so it stays
                # visible from compiled code too.
                with m.unsuppressed():
                    m.alu(self.s_funcsetup + 8, _FUNC_SETUP,
                          n=2 + len(args))
                    with m.c_call("ceval.call_cfunction",
                                  f"clib.{callee.name}", indirect=True,
                                  args=len(args) + 1, saves=3):
                        with m.clib_scope():
                            result = callee.handler(self, args)
            else:
                # Core object-protocol helper through the C extension
                # interface (list.append, len, str...).
                with m.unsuppressed():
                    m.alu(self.s_funcsetup + 8, _FUNC_SETUP,
                          n=2 + len(args))
                    with m.c_call("ceval.call_cfunction",
                                  f"clib.{callee.name}", indirect=True,
                                  args=len(args) + 1, saves=3):
                        result = callee.handler(self, args)
            self.emit_error_check(taken=False)
            for passed in args:
                self.emit_decref(passed)
            self.emit_decref(callee)
            self.emit_push(frame, result)
            return _NEXT
        if isinstance(callee, PyClass):
            instance = PyInstance(callee)
            self.alloc_object(instance)
            init = callee.methods.get("__init__")
            self.emit_decref(callee)
            if init is not None:
                self.emit_incref(instance)
                signal = self._call_guest(frame, init,
                                          [instance] + args,
                                          discard_return=True,
                                          push_value=instance)
                return signal
            if args:
                raise GuestTypeError(
                    f"{callee.name}() takes no arguments")
            self.emit_push(frame, instance)
            return _NEXT
        if isinstance(callee, PyBoundMethod):
            self.emit_incref(callee.instance)
            signal = self._call_guest(frame, callee.func,
                                      [callee.instance] + args)
            self.emit_decref(callee)
            return signal
        raise GuestTypeError(f"{callee.type_name!r} object is not callable")

    def _call_guest(self, frame: Frame, func: PyFunc,
                    args: list[GuestObject], discard_return: bool = False,
                    push_value: GuestObject | None = None) -> int:
        code = func.code
        if len(args) != code.argcount:
            raise GuestTypeError(
                f"{code.name}() takes {code.argcount} arguments "
                f"({len(args)} given)")
        m = self.machine
        self.stats.guest_calls += 1
        callee_frame = self.make_frame(code)
        # Copy arguments into the callee's locals.
        for i, arg_obj in enumerate(args):
            m.store(self.s_funcsetup + 12, _FUNC_SETUP,
                    callee_frame.local_addr(i))
            callee_frame.locals[i] = arg_obj
        m.alu(self.s_funcsetup + 16, _FUNC_SETUP, n=3)
        callee_frame.return_to = len(frame.stack)
        self._return_plans.append((discard_return, push_value))
        self.frames.append(callee_frame)
        return _FRAME_PUSHED

    def op_return_value(self, frame: Frame, arg: int) -> int:
        result = self.emit_pop(frame)
        m = self.machine
        # Cleanup: release locals and remaining stack, free the frame.
        for obj in frame.locals:
            if obj is not None:
                self.emit_decref(obj)
        for obj in frame.stack:
            self.emit_decref(obj)
        frame.stack.clear()
        m.alu(self.s_funcsetup + 20, _FUNC_SETUP, n=3)
        self.free_frame(frame)
        self.frames.pop()
        if not self.frames:
            self._module_result = result
            return _FRAME_RETURNED
        caller = self.frames[-1]
        discard_return, push_value = self._return_plans.pop()
        if discard_return:
            self.emit_decref(result)
            if push_value is not None:
                self.emit_push(caller, push_value)
        else:
            self.emit_push(caller, result)
        self.gc_poll()
        return _FRAME_RETURNED

    # ------------------------------------------------------------------
    # Handlers: method calls
    # ------------------------------------------------------------------

    def op_load_method(self, frame: Frame, arg: int) -> int:
        name = frame.code.names[arg]
        obj = self.emit_pop(frame)
        m = self.machine
        self.emit_typecheck(obj, n_branches=2)
        if isinstance(obj, PyInstance):
            # Instance attribute, then class dict, via lookdict.
            m.origin = m.site("ceval.handler.LOAD_METHOD")
            m.alu(self.s_name + 24, _NAME, n=2)
            self.dict_lookup_emit(obj.addr + 16, stable_hash(name))
            attr = obj.attrs.get(name)
            if attr is not None:
                self.emit_incref(attr)
                self.emit_push(frame, attr)
                self.emit_decref(obj)
                return _NEXT
            m.branch(self.s_name + 28, _NAME, taken=True)
            self.dict_lookup_emit(obj.cls.addr + 16, stable_hash(name))
            func = obj.cls.methods.get(name)
            if func is None:
                raise GuestNameError(
                    f"{obj.cls.name!r} object has no attribute {name!r}")
            method = PyBoundMethod(obj, func)
            self.alloc_object(method)
            self.emit_push(frame, method)
            return _NEXT
        # Builtin-type method: resolve through the type's method table.
        m.load(self.s_funcres + 24, _FUNC_RES, obj.addr)
        m.alu(self.s_funcres + 28, _FUNC_RES, n=2)
        from .builtins import PyModule, lookup_type_method
        handler = lookup_type_method(obj, name)
        if handler is None:
            raise GuestNameError(
                f"{obj.type_name!r} object has no attribute {name!r}")
        m.origin = m.site("ceval.handler.LOAD_METHOD")
        self.dict_lookup_emit(
            self.machine.space.vm_data.base + 0x3000, stable_hash(name))
        # Container/str methods inline into compiled traces; module
        # functions are external C library entry points and never do.
        bound = PyBuiltin(f"{obj.type_name}.{name}",
                          lambda vm, args, _h=handler, _o=obj:
                          _h(vm, _o, args),
                          inline_ok=not isinstance(obj, PyModule),
                          clib=isinstance(obj, PyModule))
        bound.addr = obj.addr  # method descriptor rides on the object
        self.emit_push(frame, bound)
        return _NEXT

    def op_call_method(self, frame: Frame, arg: int) -> int:
        m = self.machine
        args = [self.emit_pop(frame) for _ in range(arg)]
        args.reverse()
        callee = self.emit_pop(frame)
        m.alu(self.s_funcsetup + 24, _FUNC_SETUP, n=2)
        self.emit_typecheck(callee, n_branches=1)
        return self._call_object(frame, callee, args)

    # ------------------------------------------------------------------
    # Handlers: containers
    # ------------------------------------------------------------------

    def op_build_list(self, frame: Frame, arg: int) -> int:
        items = [self.emit_pop(frame) for _ in range(arg)]
        items.reverse()
        obj = self.make_list(items)
        self.emit_push(frame, obj)
        return _NEXT

    def op_build_tuple(self, frame: Frame, arg: int) -> int:
        items = [self.emit_pop(frame) for _ in range(arg)]
        items.reverse()
        obj = self.make_tuple(tuple(items))
        self.emit_push(frame, obj)
        return _NEXT

    def op_build_map(self, frame: Frame, arg: int) -> int:
        obj = self.make_dict()
        pairs = []
        for _ in range(arg):
            value = self.emit_pop(frame)
            key = self.emit_pop(frame)
            pairs.append((key, value))
        for key, value in reversed(pairs):
            self.dict_set(obj, key, value)
        self.emit_push(frame, obj)
        return _NEXT

    def dict_set(self, d: PyDict, key: GuestObject,
                 value: GuestObject) -> None:
        m = self.machine
        m.origin = m.site("ceval.handler.STORE_SUBSCR.dict")
        self.emit_write_barrier(d)
        raw = raw_key(key)
        self.dict_lookup_emit(d.table_addr, stable_hash(str(raw)) & 0x7FFFFFFF)
        m.store(self.s_exec + 60, _EXEC,
                d.table_addr + 24 * (stable_hash(str(raw)) & 1023))
        old = d.entries.get(raw)
        d.entries[raw] = (key, value)
        if old is not None:
            self.emit_decref(old[0])
            self.emit_decref(old[1])
        if len(d.entries) * 3 > d.table_slots * 2:
            self._grow_dict(d)

    def _grow_dict(self, d: PyDict) -> None:
        old_bytes = d.table_bytes()
        d.table_slots *= 4
        new_addr = self.alloc_buffer(d.table_bytes())
        m = self.machine
        m.touch_range(self.s_alloc + 16, _ALLOC, d.table_addr, old_bytes)
        m.touch_range(self.s_alloc + 20, _ALLOC, new_addr,
                      old_bytes, write=True)
        self.free_buffer(d.table_addr, old_bytes)
        d.table_addr = new_addr

    def free_buffer(self, addr: int, nbytes: int) -> None:
        """Release an out-of-line buffer (CPython model recycles it)."""

    def dict_get(self, d: PyDict, key: GuestObject) -> GuestObject | None:
        m = self.machine
        m.origin = m.site("ceval.handler.BINARY_SUBSCR.dict")
        raw = raw_key(key)
        self.dict_lookup_emit(d.table_addr, stable_hash(str(raw)) & 0x7FFFFFFF)
        entry = d.entries.get(raw)
        return entry[1] if entry is not None else None

    def op_binary_subscr(self, frame: Frame, arg: int) -> int:
        index = self.emit_pop(frame)
        container = self.emit_pop(frame)
        m = self.machine
        self.emit_typecheck(container, n_branches=1)
        result = None
        with m.c_call("ceval.call_getitem", "abstract.getitem",
                      indirect=True, args=2, saves=2):
            result = self._subscr_semantics(container, index)
        self.emit_incref(result)
        self.emit_decref(container)
        self.emit_decref(index)
        self.emit_push(frame, result)
        return _NEXT

    def _subscr_semantics(self, container: GuestObject,
                          index: GuestObject) -> GuestObject:
        m = self.machine
        if isinstance(container, (PyList, PyTuple)):
            if isinstance(index, PySlice):
                return self._slice_sequence(container, index)
            if not isinstance(index, (PyInt, PyBool)):
                raise GuestTypeError(
                    f"indices must be integers, not {index.type_name!r}")
            self.emit_unbox(index)
            i = int(index.value)
            items = container.items
            if i < 0:
                i += len(items)
            self.emit_error_check(taken=False)  # bounds check
            if not 0 <= i < len(items):
                raise GuestIndexError(
                    f"{container.type_name} index out of range")
            base = (container.buffer_addr
                    if isinstance(container, PyList)
                    else container.addr + 24)
            m.load(self.s_exec + 64, _EXEC, base + 8 * i)
            return items[i]
        if isinstance(container, PyDict):
            value = self.dict_get(container, index)
            self.emit_error_check(taken=value is None)
            if value is None:
                raise GuestKeyError(f"key not found: {raw_key(index)!r}")
            return value
        if isinstance(container, PyStr):
            if isinstance(index, PySlice):
                return self._slice_str(container, index)
            if not isinstance(index, (PyInt, PyBool)):
                raise GuestTypeError(
                    f"string indices must be integers")
            self.emit_unbox(index)
            i = int(index.value)
            if i < 0:
                i += len(container.value)
            self.emit_error_check(taken=False)
            if not 0 <= i < len(container.value):
                raise GuestIndexError("string index out of range")
            m.load(self.s_exec + 68, _EXEC, container.addr + 32 + i)
            return self.make_str(container.value[i])
        raise GuestTypeError(
            f"{container.type_name!r} object is not subscriptable")

    def _slice_bounds(self, length: int, slc: PySlice) -> tuple[int, int]:
        start = (int(slc.start.value)
                 if isinstance(slc.start, (PyInt, PyBool)) else 0)
        stop = (int(slc.stop.value)
                if isinstance(slc.stop, (PyInt, PyBool)) else length)
        if start < 0:
            start += length
        if stop < 0:
            stop += length
        start = max(0, min(start, length))
        stop = max(start, min(stop, length))
        return start, stop

    def _slice_sequence(self, container, slc: PySlice) -> GuestObject:
        start, stop = self._slice_bounds(len(container.items), slc)
        taken = container.items[start:stop]
        for item in taken:
            self.emit_incref(item)
        if isinstance(container, PyTuple):
            return self.make_tuple(tuple(taken))
        return self.make_list(list(taken))

    def _slice_str(self, container: PyStr, slc: PySlice) -> PyStr:
        start, stop = self._slice_bounds(len(container.value), slc)
        self.machine.touch_range(self.s_exec + 72, _EXEC,
                                 container.addr + 32 + start,
                                 max(1, stop - start))
        return self.make_str(container.value[start:stop])

    def op_store_subscr(self, frame: Frame, arg: int) -> int:
        index = self.emit_pop(frame)
        container = self.emit_pop(frame)
        value = self.emit_pop(frame)
        m = self.machine
        self.emit_typecheck(container, n_branches=1)
        with m.c_call("ceval.call_setitem", "abstract.setitem",
                      indirect=True, args=3, saves=2):
            if isinstance(container, PyList):
                if not isinstance(index, (PyInt, PyBool)):
                    raise GuestTypeError("list indices must be integers")
                self.emit_unbox(index)
                i = int(index.value)
                if i < 0:
                    i += len(container.items)
                self.emit_error_check(taken=False)
                if not 0 <= i < len(container.items):
                    raise GuestIndexError("list assignment out of range")
                old = container.items[i]
                self.emit_write_barrier(container)
                m.store(self.s_exec + 76, _EXEC,
                        container.buffer_addr + 8 * i)
                container.items[i] = value
                self.emit_decref(old)
            elif isinstance(container, PyDict):
                self.dict_set(container, index, value)
            else:
                raise GuestTypeError(
                    f"{container.type_name!r} does not support item "
                    "assignment")
        self.emit_decref(container)
        self.emit_decref(index)
        return _NEXT

    def op_build_slice(self, frame: Frame, arg: int) -> int:
        stop = self.emit_pop(frame)
        start = self.emit_pop(frame)
        obj = PySlice(start, stop)
        self.alloc_object(obj)
        self.emit_push(frame, obj)
        return _NEXT

    def op_unpack_sequence(self, frame: Frame, arg: int) -> int:
        obj = self.emit_pop(frame)
        self.emit_typecheck(obj, n_branches=1)
        if not isinstance(obj, (PyList, PyTuple)):
            raise GuestTypeError(
                f"cannot unpack {obj.type_name!r} object")
        items = obj.items
        self.emit_error_check(taken=len(items) != arg)
        if len(items) != arg:
            raise GuestValueError(
                f"expected {arg} values to unpack, got {len(items)}")
        m = self.machine
        for item in reversed(list(items)):
            m.load(self.s_exec + 80, _EXEC, obj.addr + 24)
            self.emit_incref(item)
            self.emit_push(frame, item)
        self.emit_decref(obj)
        return _NEXT

    # ------------------------------------------------------------------
    # Handlers: attributes
    # ------------------------------------------------------------------

    def op_load_attr(self, frame: Frame, arg: int) -> int:
        name = frame.code.names[arg]
        obj = self.emit_pop(frame)
        m = self.machine
        self.emit_typecheck(obj, n_branches=1)
        if not isinstance(obj, PyInstance):
            raise GuestTypeError(
                f"{obj.type_name!r} object has no attribute {name!r}")
        m.origin = m.site("ceval.handler.LOAD_ATTR")
        m.alu(self.s_name + 32, _NAME, n=2)
        self.dict_lookup_emit(obj.addr + 16, stable_hash(name))
        attr = obj.attrs.get(name)
        if attr is None:
            m.branch(self.s_name + 36, _NAME, taken=True)
            self.dict_lookup_emit(obj.cls.addr + 16, stable_hash(name))
            func = obj.cls.methods.get(name)
            if func is None:
                raise GuestNameError(
                    f"{obj.cls.name!r} object has no attribute {name!r}")
            method = PyBoundMethod(obj, func)
            self.alloc_object(method)
            self.emit_push(frame, method)
            return _NEXT
        self.emit_incref(attr)
        self.emit_decref(obj)
        self.emit_push(frame, attr)
        return _NEXT

    def op_store_attr(self, frame: Frame, arg: int) -> int:
        name = frame.code.names[arg]
        obj = self.emit_pop(frame)
        value = self.emit_pop(frame)
        m = self.machine
        self.emit_typecheck(obj, n_branches=1)
        if not isinstance(obj, PyInstance):
            raise GuestTypeError(
                f"cannot set attribute on {obj.type_name!r} object")
        m.origin = m.site("ceval.handler.STORE_ATTR")
        self.emit_write_barrier(obj)
        m.alu(self.s_name + 40, _NAME, n=2)
        self.dict_lookup_emit(obj.addr + 16, stable_hash(name))
        m.store(self.s_name + 44, _NAME, obj.addr + 16 + (stable_hash(name) & 63))
        old = obj.attrs.get(name)
        obj.attrs[name] = value
        if old is not None:
            self.emit_decref(old)
        self.emit_decref(obj)
        return _NEXT

