"""Meta-tracing JIT for the PyPy-model runtime (Section II-B).

Life cycle, following Figure 2 of the paper:

1. **Counters** — every loop back-edge and guest call increments a
   counter; crossing the hot threshold starts tracing.
2. **Tracing / profiling** — the interpreter keeps running (full
   interpreter emission) while the meta-interpreter records each executed
   operation, which costs extra ``JIT_COMPILING`` work per op.
3. **Compilation** — when the trace closes (back at the loop header, or
   the traced function returns), compile-time work proportional to the
   trace length is emitted and machine code is placed in the JIT code
   region.
4. **Compiled execution** — subsequent iterations replay the trace: the
   semantic interpreter runs silently (machine emission suppressed) while
   the JIT emits a compact ``JIT_COMPILED_CODE`` pattern per operation:
   an ALU op and a guard branch instead of dispatch/stack/boxing
   choreography. Allocations recorded during the silent execution are
   flushed as inline nursery bumps, so GC and cache behavior stay real.
5. **Deoptimization** — when execution diverges from the recorded path a
   guard fails: the first failures pay an expensive state-reconstruction
   exit; a guard that keeps failing gets a *bridge* and becomes a cheap
   side exit.
"""

from __future__ import annotations

from ...categories import OverheadCategory
from ...config import JITConfig
from ...frontend.bytecode import Op
from ...telemetry import TELEMETRY

_COMPILING = int(OverheadCategory.JIT_COMPILING)
_COMPILED = int(OverheadCategory.JIT_COMPILED_CODE)

_IDLE = 0
_RECORDING = 1
_EXECUTING = 2

#: Opcodes that read/write guest data structures in compiled code.
_MEM_LOAD_OPS = frozenset({
    int(Op.BINARY_SUBSCR), int(Op.LOAD_ATTR), int(Op.LOAD_METHOD),
})
_MEM_STORE_OPS = frozenset({
    int(Op.STORE_SUBSCR), int(Op.STORE_ATTR),
})
_GUARD_OPS = frozenset({
    int(Op.POP_JUMP_IF_FALSE), int(Op.POP_JUMP_IF_TRUE),
    int(Op.JUMP_IF_FALSE_OR_POP), int(Op.JUMP_IF_TRUE_OR_POP),
    int(Op.FOR_ITER), int(Op.COMPARE_OP),
})
_PURE_STACK_OPS = frozenset({
    int(Op.LOAD_FAST), int(Op.STORE_FAST), int(Op.LOAD_CONST),
    int(Op.POP_TOP), int(Op.DUP_TOP), int(Op.ROT_TWO),
})


class CompiledTrace:
    """One compiled loop or function trace.

    ``bridges`` maps a guard index to the compiled side-path taken when
    that guard fails (Section II-B: "optimize a portion of a function or
    loop if a certain guard continues to fail"). A bridge is itself a
    CompiledTrace; ``None`` marks a bridge that failed to compile.
    """

    __slots__ = ("key", "ops", "code_base", "is_loop", "executions",
                 "bridges")

    def __init__(self, key, ops, code_base: int, is_loop: bool) -> None:
        self.key = key
        self.ops = ops
        self.code_base = code_base
        self.is_loop = is_loop
        self.executions = 0
        self.bridges: dict[int, "CompiledTrace | None"] = {}

    def __len__(self) -> int:
        return len(self.ops)


class TraceJIT:
    """Counter, recorder, compiler, and replayer for one VM instance."""

    def __init__(self, vm, config: JITConfig) -> None:
        self.vm = vm
        self.machine = vm.machine
        self.config = config
        self.mode = _IDLE
        self.loop_counters: dict[tuple, int] = {}
        self.call_counters: dict[int, int] = {}
        #: Loop-header key -> modeled hot-counter slot offset, assigned
        #: in first-touch order. Keys contain ``id(code)``, so deriving
        #: the modeled address from ``hash(key)`` (as an earlier
        #: revision did) made the trace differ from run to run.
        self._counter_slots: dict[tuple, int] = {}
        #: key -> CompiledTrace, or None when blacklisted.
        self.traces: dict[tuple, CompiledTrace | None] = {}
        self.guard_fails: dict[tuple, int] = {}
        self.pending_allocs: list[tuple[int, int]] = []
        # Recording state.
        self._rec_key: tuple | None = None
        self._rec_ops: list[tuple] = []
        self._rec_is_loop = True
        self._rec_return_depth = 0
        #: When recording a bridge: (parent trace, guard index).
        self._rec_bridge_of: tuple | None = None
        # Execution state.
        self._exec_trace: CompiledTrace | None = None
        self._exec_index = 0
        self._trace_count = 0
        self.s_record = self.machine.site("jit.metainterp.record")
        self.s_compile = self.machine.site("jit.compile")
        self.s_deopt = self.machine.site("jit.deopt")

    # ------------------------------------------------------------------
    # Hot-path detection
    # ------------------------------------------------------------------

    def on_backedge(self, frame, target: int) -> None:
        if self.mode == _EXECUTING:
            return
        key = (id(frame.code), target)
        if self.mode == _RECORDING:
            if self._rec_bridge_of is not None:
                parent, _ = self._rec_bridge_of
                if key == parent.key:
                    # The side path rejoined the loop header: the bridge
                    # is complete; compile and resume compiled execution.
                    self._finish_recording()
                    self._start_executing(parent)
                elif len(self._rec_ops) >= self.config.trace_limit:
                    self._abort_recording()
                return
            if key == self._rec_key:
                self._finish_recording()
                self._start_executing(self.traces[key])
            elif len(self._rec_ops) >= self.config.trace_limit:
                self._abort_recording()
            return
        trace = self.traces.get(key, -1)
        if trace is None:
            return  # blacklisted
        if isinstance(trace, CompiledTrace):
            self._start_executing(trace)
            return
        count = self.loop_counters.get(key, 0) + 1
        self.loop_counters[key] = count
        # Counter bookkeeping: a load, an increment, a threshold compare.
        m = self.machine
        slot = self._counter_slots.setdefault(
            key, 8 * len(self._counter_slots))
        m.load(self.s_record + 20, _COMPILING, m.space.vm_data.base
               + 0x6000 + (slot & 0xFFF8))
        m.alu(self.s_record + 24, _COMPILING, n=1)
        m.branch(self.s_record + 28, _COMPILING,
                 taken=count >= self.config.hot_loop_threshold)
        if count >= self.config.hot_loop_threshold:
            self._start_recording(key, is_loop=True)

    def on_call(self, code) -> None:
        """Guest-call hook: functions get hot too (method JIT behavior)."""
        if self.mode != _IDLE:
            return
        key = (id(code), -1)
        trace = self.traces.get(key, -1)
        if trace is None:
            return
        if isinstance(trace, CompiledTrace):
            self._start_executing(trace)
            return
        count = self.call_counters.get(id(code), 0) + 1
        self.call_counters[id(code)] = count
        if count >= self.config.hot_call_threshold:
            self._start_recording(key, is_loop=False)
            self._rec_return_depth = len(self.vm.frames) + 1

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------

    def _start_recording(self, key: tuple, is_loop: bool,
                         bridge_of: tuple | None = None) -> None:
        self.mode = _RECORDING
        self._rec_key = key
        self._rec_ops = []
        self._rec_is_loop = is_loop
        self._rec_bridge_of = bridge_of

    def record_op(self, frame, op: int) -> None:
        """Meta-interpreter overhead while tracing (per executed op)."""
        m = self.machine
        m.alu(self.s_record, _COMPILING, n=4)
        m.load(self.s_record + 16, _COMPILING,
               m.space.jit_code.base + 16 * (len(self._rec_ops) & 0xFFFF))
        m.store(self.s_record + 18, _COMPILING,
                m.space.jit_code.base + 16 * (len(self._rec_ops) & 0xFFFF))
        self._rec_ops.append((id(frame.code), frame.pc, op))
        if len(self._rec_ops) > self.config.trace_limit:
            self._abort_recording()
            return
        if not self._rec_is_loop and op == int(Op.RETURN_VALUE) and \
                len(self.vm.frames) == self._rec_return_depth:
            self._finish_recording()

    def _abort_recording(self) -> None:
        if TELEMETRY.enabled:
            TELEMETRY.events.emit(
                "jit.trace_abort", runtime=self.vm.runtime_name,
                bridge=self._rec_bridge_of is not None,
                ops=len(self._rec_ops))
            TELEMETRY.metrics.counter(
                "jit.trace_aborts", runtime=self.vm.runtime_name).inc()
        if self._rec_bridge_of is not None:
            parent, index = self._rec_bridge_of
            parent.bridges[index] = None  # blacklist this side exit
        else:
            self.traces[self._rec_key] = None  # blacklist
        self.mode = _IDLE
        self._rec_key = None
        self._rec_ops = []
        self._rec_bridge_of = None

    def _finish_recording(self) -> None:
        ops = self._rec_ops
        key = self._rec_key
        m = self.machine
        # Compilation cost scales with trace length (optimization passes).
        per_op = self.config.compile_cost_per_op
        for i in range(len(ops)):
            m.alu(self.s_compile, _COMPILING, n=per_op - 2)
            m.load(self.s_compile + 16, _COMPILING,
                   m.space.jit_code.base + 16 * i)
            m.store(self.s_compile + 20, _COMPILING,
                    m.space.jit_code.base + 16 * i)
        self._trace_count += 1
        code_base = m.jit_site(f"jit.trace.{self._trace_count}",
                               16 * max(1, len(ops)))
        trace = CompiledTrace(key, ops, code_base, self._rec_is_loop)
        is_bridge = self._rec_bridge_of is not None
        if is_bridge:
            parent, index = self._rec_bridge_of
            parent.bridges[index] = trace
            self.vm.stats.bridges_compiled += 1
        else:
            self.traces[key] = trace
        self.vm.stats.traces_compiled += 1
        self.vm.stats.compiled_ops += len(ops)
        if TELEMETRY.enabled:
            kind = "bridge" if is_bridge else (
                "loop" if self._rec_is_loop else "function")
            TELEMETRY.events.emit(
                "jit.trace_compile", runtime=self.vm.runtime_name,
                trace_kind=kind, ops=len(ops),
                trace_id=self._trace_count)
            TELEMETRY.metrics.counter(
                "jit.traces_compiled", runtime=self.vm.runtime_name,
                kind=kind).inc()
            TELEMETRY.metrics.histogram(
                "jit.trace_ops",
                runtime=self.vm.runtime_name).observe(len(ops))
        self.mode = _IDLE
        self._rec_key = None
        self._rec_ops = []
        self._rec_bridge_of = None

    # ------------------------------------------------------------------
    # Compiled execution
    # ------------------------------------------------------------------

    def _start_executing(self, trace: CompiledTrace) -> None:
        self.mode = _EXECUTING
        self._exec_trace = trace
        self._exec_index = 0
        trace.executions += 1
        self.pending_allocs.clear()
        self.machine.suppressed = True

    def before_op(self, frame, op: int) -> bool:
        """Check one op against the trace; emit its compiled-code cost.

        Returns True when compiled execution continues, False when it
        exited (guard failure or clean end) and the interpreter resumes.
        """
        trace = self._exec_trace
        index = self._exec_index
        expected = trace.ops[index]
        actual = (id(frame.code), frame.pc, op)
        if actual != expected:
            bridge = trace.bridges.get(index)
            if isinstance(bridge, CompiledTrace) and \
                    bridge.ops and bridge.ops[0] == actual:
                # Take the compiled side path: stay in machine code.
                self._exec_trace = bridge
                self._exec_index = 0
                trace = bridge
                index = 0
            else:
                self._guard_exit(frame, index, actual, bridge)
                return False
        m = self.machine
        m.suppressed = False
        site = trace.code_base + 16 * (index & 0x3FFF)
        if self.pending_allocs:
            self._flush_allocs(site)
        if op in _PURE_STACK_OPS:
            pass  # register-allocated: no machine code at all
        elif op in _GUARD_OPS:
            m.alu(site, _COMPILED, n=1)
            m.branch(site + 4, _COMPILED, taken=False)
        elif op in _MEM_LOAD_OPS:
            target = frame.stack[-1] if frame.stack else None
            addr = target.addr if target is not None else site
            m.load(site, _COMPILED, addr + 16)
            m.branch(site + 4, _COMPILED, taken=False)  # bounds/shape guard
        elif op in _MEM_STORE_OPS:
            target = frame.stack[-2] if len(frame.stack) >= 2 else None
            addr = target.addr if target is not None else site
            m.store(site, _COMPILED, addr + 16)
            m.alu(site + 4, _COMPILED, n=1)
        elif op == int(Op.JUMP_ABSOLUTE):
            m.branch(site, _COMPILED, taken=True, conditional=False)
        else:
            # Arithmetic and everything else: one real operation plus an
            # overflow/type guard.
            m.alu(site, _COMPILED, n=1)
            m.branch(site + 4, _COMPILED, taken=False)
        m.suppressed = True
        self._exec_index = index + 1
        if self._exec_index >= len(trace.ops):
            if trace.is_loop:
                self._exec_index = 0
            else:
                self._clean_exit()
        return True

    def _flush_allocs(self, site: int) -> None:
        m = self.machine
        for addr, size in self.pending_allocs:
            m.alu(site + 8, _COMPILED, n=2)
            m.branch(site + 12, _COMPILED, taken=False)
            m.touch_range(site + 16, _COMPILED, addr, size, write=True)
        self.pending_allocs.clear()

    def _clean_exit(self) -> None:
        m = self.machine
        m.suppressed = False
        if self.pending_allocs:
            self._flush_allocs(self._exec_trace.code_base)
        m.alu(self._exec_trace.code_base + 20, _COMPILED, n=2)
        self.mode = _IDLE
        self._exec_trace = None

    def _guard_exit(self, frame, index: int, actual: tuple,
                    bridge) -> None:
        trace = self._exec_trace
        m = self.machine
        m.suppressed = False
        if self.pending_allocs:
            self._flush_allocs(trace.code_base)
        fail_key = (trace.key, index)
        fails = self.guard_fails.get(fail_key, 0) + 1
        self.guard_fails[fail_key] = fails
        if TELEMETRY.enabled:
            TELEMETRY.events.emit(
                "jit.guard_fail", runtime=self.vm.runtime_name,
                guard_index=index, fails=fails,
                has_bridge=bridge is not None)
            TELEMETRY.metrics.counter(
                "jit.guard_fails", runtime=self.vm.runtime_name).inc()
        m.branch(trace.code_base + 16 * (index & 0x3FFF) + 4, _COMPILED,
                 taken=True)
        self._exec_trace = None
        if bridge is not None:
            # A bridge exists but this exit took yet another path, or
            # the bridge was blacklisted: leave through a cheap stub.
            m.alu(trace.code_base + 24, _COMPILED, n=2)
            self.mode = _IDLE
            return
        if fails <= self.config.guard_bridge_threshold:
            # Deoptimization: reconstruct the interpreter state from the
            # guard's resume data — expensive (Section II-B).
            live = len(frame.stack) + len(frame.locals)
            m.alu(self.s_deopt, _COMPILING, n=24)
            for i in range(live):
                m.store(self.s_deopt + 16, _COMPILING,
                        frame.addr + 64 + 8 * (i % 48))
            m.load(self.s_deopt + 20, _COMPILING, trace.code_base)
            self.vm.stats.deopts += 1
            if TELEMETRY.enabled:
                TELEMETRY.events.emit(
                    "jit.deopt", runtime=self.vm.runtime_name,
                    guard_index=index, live_values=live)
                TELEMETRY.metrics.counter(
                    "jit.deopts", runtime=self.vm.runtime_name).inc()
            self.mode = _IDLE
            return
        # This guard keeps failing: record a bridge starting at the
        # divergent operation; iterations stay interpreted while the
        # bridge is being traced.
        if TELEMETRY.enabled:
            TELEMETRY.events.emit(
                "jit.bridge_start", runtime=self.vm.runtime_name,
                guard_index=index, fails=fails)
        self._start_recording(("bridge", trace.key, index),
                              is_loop=False, bridge_of=(trace, index))
        self._rec_ops.append(actual)
        m.alu(self.s_record + 32, _COMPILING, n=6)


class NullJIT:
    """Stand-in when the JIT is disabled (PyPy w/o JIT configuration)."""

    mode = _IDLE
    pending_allocs: list = []

    def __init__(self, vm, config: JITConfig) -> None:
        self.vm = vm
        self.config = config

    def on_backedge(self, frame, target: int) -> None:
        pass

    def on_call(self, code) -> None:
        pass

    def record_op(self, frame, op: int) -> None:
        pass

    def before_op(self, frame, op: int) -> bool:
        return False
