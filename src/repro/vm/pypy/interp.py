"""PyPy-model runtime: generational GC + optional tracing JIT.

The interpreter reuses the shared MiniPy semantics and choreography of
:class:`~repro.vm.base.BaseVM`, with the memory-management hooks swapped:
no reference counting (tracing GC instead, with a write barrier), bump
allocation in a nursery, and frames allocated in the GC heap. With the
JIT enabled, hot loops and functions are traced, compiled, and replayed
as compact machine code (see :mod:`~repro.vm.pypy.jit`).
"""

from __future__ import annotations

from ...categories import OverheadCategory
from ...config import RuntimeConfig, pypy_runtime
from ...frontend.compiler import Program
from ...host.address_space import AddressSpace
from ...host.machine import HostMachine
from ...objects.model import GuestObject
from ..base import BaseVM, Frame
from .gc import GenerationalGC
from .jit import NullJIT, TraceJIT

_ALLOC = int(OverheadCategory.OBJECT_ALLOCATION)
_FUNC_SETUP = int(OverheadCategory.FUNCTION_SETUP_CLEANUP)


class PyPyVM(BaseVM):
    """The PyPy 5.3 analog, with or without JIT."""

    runtime_name = "pypy"
    refcounting = False

    def __init__(self, machine: HostMachine, program: Program,
                 config: RuntimeConfig | None = None) -> None:
        self.config = config if config is not None else pypy_runtime()
        super().__init__(machine, program)
        self.gc = GenerationalGC(self, self.config.gc)
        if self.config.jit.enabled:
            self.jit = TraceJIT(self, self.config.jit)
        else:
            self.jit = NullJIT(self, self.config.jit)

    # ------------------------------------------------------------------
    # Memory-management hooks
    # ------------------------------------------------------------------

    def alloc_object(self, obj: GuestObject, category: int = _ALLOC,
                     ) -> GuestObject:
        self.gc.alloc_object(obj, category)
        return obj

    def alloc_buffer(self, nbytes: int, category: int = _ALLOC) -> int:
        return self.gc.alloc_bytes(nbytes, category)

    def emit_write_barrier(self, container: GuestObject) -> None:
        self.gc.write_barrier(container)

    def alloc_frame(self, frame: Frame) -> int:
        return self.gc.alloc_bytes(frame.size_bytes(), _FUNC_SETUP)

    def free_frame(self, frame: Frame) -> None:
        """Frames are garbage-collected; dead ones vanish with the nursery."""

    # ------------------------------------------------------------------
    # JIT hooks
    # ------------------------------------------------------------------

    def on_backedge(self, frame: Frame, target: int) -> None:
        self.jit.on_backedge(frame, target)

    def _call_guest(self, frame, func, args, discard_return=False,
                    push_value=None):
        self.jit.on_call(func.code)
        return super()._call_guest(frame, func, args, discard_return,
                                   push_value)

    def execute_frame(self, frame: Frame) -> None:
        """Interpreter loop with tracing/compiled-execution hooks."""
        handlers = self._handlers
        ops = frame.code.ops
        args = frame.code.args
        stats = self.stats
        machine = self.machine
        jit = self.jit
        while True:
            op = ops[frame.pc]
            arg = args[frame.pc]
            mode = jit.mode
            if mode == 2:  # compiled execution
                if not jit.before_op(frame, op):
                    # Guard exit: resume interpretation of this very op.
                    self.emit_dispatch(frame, op)
            else:
                self.emit_dispatch(frame, op)
                if mode == 1:  # recording
                    jit.record_op(frame, op)
            frame.pc += 1
            stats.bytecodes += 1
            if not (stats.bytecodes & 0x3FF):
                machine.check_budget()
            signal = handlers[op](frame, arg)
            if signal:
                return


def run_pypy(program: Program, config: RuntimeConfig | None = None,
             machine: HostMachine | None = None,
             max_instructions: int = 200_000_000):
    """Convenience: run ``program`` on a fresh PyPy-model runtime.

    Builds an address space whose nursery matches the GC configuration.
    Returns ``(vm, machine)``.
    """
    if config is None:
        config = pypy_runtime()
    if machine is None:
        space = AddressSpace(nursery_size=config.gc.nursery_size)
        machine = HostMachine(space, max_instructions=max_instructions)
    vm = PyPyVM(machine, program, config)
    vm.run()
    return vm, machine
