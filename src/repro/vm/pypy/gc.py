"""Generational garbage collector for the PyPy-model runtime.

The design follows Section II-C and the PyPy documentation the paper
cites: objects are bump-allocated in a *nursery* of configurable size;
when it fills, a copying minor collection moves the survivors to the old
space and resets the bump pointer; the old space is collected by a
mark-sweep major collection when it has grown enough.

Every collector action emits real memory traffic at real simulated
addresses — tracing loads walk the reachable objects, copies read the
nursery and write the old space. This is the mechanism behind Figures
10-17: a nursery larger than the LLC is swept by the allocator faster
than the cache can retain it, so allocation stores miss; a small nursery
stays cache-resident but forces frequent collections.
"""

from __future__ import annotations

from ...categories import OverheadCategory
from ...config import GCConfig
from ...errors import AllocationError
from ...telemetry import TELEMETRY
from ...objects.model import (
    GuestObject,
    PyDict,
    PyInstance,
    PyList,
    gc_children,
)

_GC = int(OverheadCategory.GARBAGE_COLLECTION)
_ALLOC = int(OverheadCategory.OBJECT_ALLOCATION)

#: Objects larger than this fraction of the nursery go straight to the
#: old space (the standard "large object" escape hatch).
_LARGE_FRACTION = 8


class GenerationalGC:
    """Nursery + old space with copying minor and mark-sweep major GC."""

    def __init__(self, vm, config: GCConfig) -> None:
        self.vm = vm
        self.config = config
        machine = vm.machine
        self.machine = machine
        self.nursery = machine.space.nursery
        self.old = machine.space.old
        if self.nursery.size != config.nursery_size:
            raise AllocationError(
                "address space nursery size does not match GCConfig "
                f"({self.nursery.size} != {config.nursery_size})")
        #: Guest objects currently allocated in the nursery.
        self.nursery_objects: list[GuestObject] = []
        #: Old objects written since the last minor GC (remembered set).
        self.remembered: dict[int, GuestObject] = {}
        self._last_major_live = 0
        self._major_threshold = config.major_initial_threshold
        self.s_alloc = machine.site("gc.nursery_alloc")
        self.s_barrier = machine.site("gc.write_barrier")
        self.s_trace = machine.site("gc.trace")
        self.s_copy = machine.site("gc.copy")
        self.s_major = machine.site("gc.major")
        #: Cycle-level accounting for the analysis layer.
        self.minor_gc_count = 0
        self.major_gc_count = 0
        self.copied_bytes = 0
        self.promoted_objects = 0

    # ------------------------------------------------------------------
    # Allocation
    # ------------------------------------------------------------------

    def alloc_object(self, obj: GuestObject, category: int = _ALLOC) -> None:
        size = obj.size_bytes()
        obj.addr = self.alloc_bytes(size, category)
        if self.nursery.contains(obj.addr):
            self.nursery_objects.append(obj)
        stats = self.vm.stats
        stats.allocations += 1
        stats.allocated_bytes += size

    def alloc_bytes(self, size: int, category: int = _ALLOC) -> int:
        """Bump-allocate; runs a minor collection when the nursery fills."""
        if size * _LARGE_FRACTION > self.nursery.size:
            return self._alloc_old(size, category)
        try:
            addr = self.nursery.bump(size)
        except AllocationError:
            self.minor_collect()
            addr = self.nursery.bump(size)
        self._emit_bump(addr, size, category)
        return addr

    def _alloc_old(self, size: int, category: int) -> int:
        addr = self.old.bump(size)
        self._emit_bump(addr, size, category)
        return addr

    def _emit_bump(self, addr: int, size: int, category: int) -> None:
        m = self.machine
        if m.suppressed:
            jit = getattr(self.vm, "jit", None)
            if jit is not None:
                jit.pending_allocs.append((addr, size))
            return
        # Inline bump: add, compare against nursery top, branch.
        m.alu(self.s_alloc, category, n=2)
        m.branch(self.s_alloc + 8, category, taken=False)
        # Object initialization sweeps the fresh memory.
        m.touch_range(self.s_alloc + 12, category, addr, size, write=True)

    # ------------------------------------------------------------------
    # Write barrier
    # ------------------------------------------------------------------

    def write_barrier(self, obj: GuestObject) -> None:
        m = self.machine
        if not m.suppressed:
            m.load(self.s_barrier, _GC, obj.addr)
            m.branch(self.s_barrier + 8, _GC, taken=False)
        if not self.nursery.contains(obj.addr) and id(obj) not in \
                self.remembered:
            self.remembered[id(obj)] = obj
            if not m.suppressed:
                m.store(self.s_barrier + 12, _GC, obj.addr)

    # ------------------------------------------------------------------
    # Minor collection
    # ------------------------------------------------------------------

    def _roots(self) -> list[GuestObject]:
        roots: list[GuestObject] = []
        m = self.machine
        for frame in self.vm.frames:
            m.touch_range(self.s_trace, _GC, frame.addr,
                          frame.size_bytes())
            for obj in frame.locals:
                if obj is not None:
                    roots.append(obj)
            roots.extend(frame.stack)
        for obj in self.vm.globals.values():
            m.load(self.s_trace + 4, _GC, obj.addr)
            roots.append(obj)
        for obj in self.remembered.values():
            m.load(self.s_trace + 8, _GC, obj.addr)
            roots.append(obj)
        return roots

    def minor_collect(self) -> None:
        """Copying collection of the nursery.

        Survivors (objects reachable from frames, globals, and the
        remembered set) are copied to the old space; everything else in
        the nursery dies for free when the bump pointer resets.
        """
        m = self.machine
        telemetry = TELEMETRY if TELEMETRY.enabled else None
        if telemetry is not None:
            telemetry.events.emit(
                "gc.minor.start", runtime=self.vm.runtime_name,
                nursery_used=self.nursery.used,
                remembered=len(self.remembered))
            copied_before = self.copied_bytes
            promoted_before = self.promoted_objects
        saved = m.suppressed
        m.suppressed = False
        try:
            self._minor_collect_inner()
        finally:
            m.suppressed = saved
        if telemetry is not None:
            bytes_promoted = self.copied_bytes - copied_before
            telemetry.events.emit(
                "gc.minor.end", runtime=self.vm.runtime_name,
                bytes_promoted=bytes_promoted,
                objects_promoted=self.promoted_objects - promoted_before,
                old_used=self.old.used)
            telemetry.metrics.counter(
                "gc.minor_collections",
                runtime=self.vm.runtime_name).inc()
            telemetry.metrics.histogram(
                "gc.bytes_promoted",
                runtime=self.vm.runtime_name).observe(bytes_promoted)

    def _minor_collect_inner(self) -> None:
        m = self.machine
        nursery = self.nursery
        visited: set[int] = set()
        queue = self._roots()
        copied = 0
        while queue:
            obj = queue.pop()
            key = id(obj)
            if key in visited:
                continue
            visited.add(key)
            in_nursery = nursery.contains(obj.addr)
            if in_nursery:
                copied += self._copy_to_old(obj)
                obj.gc_age += 1
                self.promoted_objects += 1
            # Expand through nursery objects and one hop from roots;
            # unwritten old objects cannot point into the nursery, so the
            # traversal is bounded by the live nursery plus the root set.
            for child in gc_children(obj):
                if id(child) not in visited and (
                        nursery.contains(child.addr) or in_nursery):
                    m.load(self.s_trace + 12, _GC, obj.addr + 8)
                    queue.append(child)
        # Frames themselves live in the nursery until a GC proves them
        # long-lived; move any live frame storage out.
        for frame in self.vm.frames:
            if nursery.contains(frame.addr):
                size = frame.size_bytes()
                new_addr = self.old.bump(size)
                m.touch_range(self.s_copy, _GC, frame.addr, size)
                m.touch_range(self.s_copy + 4, _GC, new_addr, size,
                              write=True)
                frame.addr = new_addr
                copied += size
        self.copied_bytes += copied
        self.vm.stats.gc_copied_bytes += copied
        self.vm.stats.minor_gcs += 1
        self.minor_gc_count += 1
        self.nursery_objects.clear()
        self.remembered.clear()
        nursery.reset()
        if self.old.used - self._last_major_live > self._major_threshold:
            self.major_collect()

    def _copy_to_old(self, obj: GuestObject) -> int:
        """Copy one survivor (and its out-of-line buffers) to old space."""
        m = self.machine
        size = obj.size_bytes()
        new_addr = self.old.bump(size)
        m.touch_range(self.s_copy + 8, _GC, obj.addr, size)
        m.touch_range(self.s_copy + 12, _GC, new_addr, size, write=True)
        # Forwarding pointer write at the old location.
        m.store(self.s_copy + 16, _GC, obj.addr)
        obj.addr = new_addr
        moved = size
        if isinstance(obj, PyList) and self.nursery.contains(
                obj.buffer_addr):
            buf_size = obj.buffer_bytes()
            new_buf = self.old.bump(buf_size)
            m.touch_range(self.s_copy + 20, _GC, obj.buffer_addr, buf_size)
            m.touch_range(self.s_copy + 24, _GC, new_buf, buf_size,
                          write=True)
            obj.buffer_addr = new_buf
            moved += buf_size
        elif isinstance(obj, PyDict) and self.nursery.contains(
                obj.table_addr):
            table_size = obj.table_bytes()
            new_table = self.old.bump(table_size)
            m.touch_range(self.s_copy + 28, _GC, obj.table_addr, table_size)
            m.touch_range(self.s_copy + 32, _GC, new_table, table_size,
                          write=True)
            obj.table_addr = new_table
            moved += table_size
        elif isinstance(obj, PyInstance):
            moved += obj.attrs_bytes()
        return moved

    # ------------------------------------------------------------------
    # Major collection
    # ------------------------------------------------------------------

    def major_collect(self) -> None:
        """Mark-sweep over the old space (run incrementally by real PyPy;
        modeled as one pass here — the paper's figures do not depend on
        incrementality)."""
        m = self.machine
        telemetry = TELEMETRY if TELEMETRY.enabled else None
        if telemetry is not None:
            telemetry.events.emit(
                "gc.major.start", runtime=self.vm.runtime_name,
                old_used=self.old.used, threshold=self._major_threshold)
        visited: set[int] = set()
        live_bytes = 0
        queue = [obj for frame in self.vm.frames
                 for obj in list(frame.stack) + [
                     o for o in frame.locals if o is not None]]
        queue.extend(self.vm.globals.values())
        while queue:
            obj = queue.pop()
            key = id(obj)
            if key in visited:
                continue
            visited.add(key)
            # Mark: read the header, set the mark bit.
            m.load(self.s_major, _GC, obj.addr)
            m.store(self.s_major + 4, _GC, obj.addr)
            live_bytes += obj.size_bytes()
            for child in gc_children(obj):
                if id(child) not in visited:
                    queue.append(child)
        # Sweep: walk the old space at page granularity.
        page = 4096
        used = self.old.used
        for offset in range(0, used, page):
            m.load(self.s_major + 8, _GC, self.old.base + offset)
            m.alu(self.s_major + 12, _GC, n=1)
        self._last_major_live = self.old.used
        self._major_threshold = max(
            self.config.major_initial_threshold,
            int(live_bytes * (self.config.major_growth_factor - 1.0)))
        self.vm.stats.major_gcs += 1
        self.major_gc_count += 1
        if telemetry is not None:
            telemetry.events.emit(
                "gc.major.end", runtime=self.vm.runtime_name,
                live_bytes=live_bytes, marked_objects=len(visited),
                next_threshold=self._major_threshold)
            telemetry.metrics.counter(
                "gc.major_collections",
                runtime=self.vm.runtime_name).inc()
