"""PyPy-model runtime: interpreter, generational GC, tracing JIT."""

from .gc import GenerationalGC
from .interp import PyPyVM, run_pypy
from .jit import CompiledTrace, NullJIT, TraceJIT

__all__ = ["PyPyVM", "run_pypy", "GenerationalGC", "TraceJIT", "NullJIT",
           "CompiledTrace"]
