"""Deterministic string hashing for the run-time models.

The VMs derive simulated addresses (dict probe slots, global/builtin
table offsets, inline-cache slots) from name hashes. Python's built-in
``hash(str)`` is randomized per interpreter invocation unless
``PYTHONHASHSEED`` is pinned, which made guest traces — and therefore
cycle counts and disk-cache contents — drift between CLI invocations.
Every modeled hash goes through :func:`stable_hash` instead: FNV-1a over
the UTF-8 encoding, a fixed function of the name alone, so traces are
byte-identical across fresh interpreter processes (the ROADMAP's
distributed-fabric prerequisite).
"""

from __future__ import annotations

from functools import lru_cache

_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3
_MASK = 0xFFFFFFFFFFFFFFFF


@lru_cache(maxsize=8192)
def stable_hash(text: str) -> int:
    """64-bit FNV-1a hash of ``text`` — stable across processes."""
    value = _FNV_OFFSET
    for byte in text.encode("utf-8"):
        value = ((value ^ byte) * _FNV_PRIME) & _MASK
    return value
