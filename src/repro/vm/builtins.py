"""Builtin functions, type methods, and modeled C library modules.

Builtins are the guest's window into "C code": calling one goes through
the C-extension interface in :meth:`BaseVM._call_object` (argument
marshaling + C calling convention), and the work *inside* is tagged
either ``EXECUTE`` (core object-protocol helpers such as ``list.append``)
or ``C_LIBRARY`` (external library work: ``pickle``, ``json``, ``re``,
``math``), matching how Section IV-C.1 separates C library time.

The C library implementations perform real computation — ``pickle.dumps``
really serializes and ``pickle.loads`` really parses — so benchmark
results can be verified for correctness, while their emission cost scales
with data size the way the native libraries' does.
"""

from __future__ import annotations

import math as _math

from ..categories import OverheadCategory
from ..errors import (
    GuestIndexError,
    GuestKeyError,
    GuestTypeError,
    GuestValueError,
)
from ..objects.model import (
    FALSE,
    NONE,
    TRUE,
    GuestObject,
    PyBool,
    PyBuiltin,
    PyDict,
    PyFloat,

    PyInt,
    PyList,
    PyNone,
    PyRange,
    PyStr,
    PyTuple,
    guest_repr,
    raw_key,
)

_EXEC = int(OverheadCategory.EXECUTE)
_CLIB = int(OverheadCategory.C_LIBRARY)
_ALLOC = int(OverheadCategory.OBJECT_ALLOCATION)
_ERROR = int(OverheadCategory.ERROR_CHECK)


class PyModule(GuestObject):
    """A modeled C extension module (math, pickle, json, re, rnd)."""

    __slots__ = ("name", "functions")
    type_name = "module"

    def __init__(self, name: str, functions: dict[str, object]) -> None:
        super().__init__()
        self.name = name
        self.functions = functions

    def size_bytes(self) -> int:
        return 64


# ----------------------------------------------------------------------
# Emission helpers
# ----------------------------------------------------------------------

def _clib_alu(vm, label: str, n: int, cat: int = _CLIB) -> None:
    vm.machine.alu(vm.machine.site(f"clib.{label}"), cat, n=n)


def _clib_touch(vm, label: str, addr: int, nbytes: int,
                write: bool = False, cat: int = _CLIB) -> None:
    vm.machine.touch_range(vm.machine.site(f"clib.{label}"), cat,
                           addr, nbytes, write=write)


def _scratch(vm, nbytes: int) -> int:
    """Working buffer inside the C library region (reused cyclically)."""
    region = vm.machine.space.c_lib
    if region.remaining < nbytes + 64:
        region.reset()
    return region.bump(max(nbytes, 16))


def _expect_int(obj: GuestObject, what: str) -> int:
    if isinstance(obj, (PyInt, PyBool)):
        return int(obj.value)
    raise GuestTypeError(f"{what} must be an integer, not "
                         f"{obj.type_name!r}")


def _expect_number(obj: GuestObject, what: str) -> float:
    if isinstance(obj, (PyInt, PyFloat, PyBool)):
        return float(obj.value)
    raise GuestTypeError(f"{what} must be a number, not "
                         f"{obj.type_name!r}")


def _expect_str(obj: GuestObject, what: str) -> str:
    if isinstance(obj, PyStr):
        return obj.value
    raise GuestTypeError(f"{what} must be a string, not "
                         f"{obj.type_name!r}")


def _arity(args: list, n: int, name: str) -> None:
    if len(args) != n:
        raise GuestTypeError(
            f"{name}() takes {n} arguments ({len(args)} given)")


# ----------------------------------------------------------------------
# Core builtins
# ----------------------------------------------------------------------

def _bi_len(vm, args):
    _arity(args, 1, "len")
    obj = args[0]
    _clib_alu(vm, "len", 2, cat=_EXEC)
    vm.machine.load(vm.machine.site("clib.len.size"), _EXEC, obj.addr + 16)
    if isinstance(obj, (PyList, PyTuple)):
        return vm.make_int(len(obj.items))
    if isinstance(obj, PyStr):
        return vm.make_int(len(obj.value))
    if isinstance(obj, PyDict):
        return vm.make_int(len(obj.entries))
    if isinstance(obj, PyRange):
        return vm.make_int(len(obj))
    raise GuestTypeError(f"object of type {obj.type_name!r} has no len()")


def _bi_range(vm, args):
    if not 1 <= len(args) <= 3:
        raise GuestTypeError("range() takes 1 to 3 arguments")
    values = [_expect_int(a, "range argument") for a in args]
    if len(values) == 1:
        rng = PyRange(0, values[0], 1)
    elif len(values) == 2:
        rng = PyRange(values[0], values[1], 1)
    else:
        if values[2] == 0:
            raise GuestValueError("range() step must not be zero")
        rng = PyRange(values[0], values[1], values[2])
    vm.alloc_object(rng)
    return rng


def _bi_abs(vm, args):
    _arity(args, 1, "abs")
    _clib_alu(vm, "abs", 2, cat=_EXEC)
    obj = args[0]
    if isinstance(obj, (PyInt, PyBool)):
        return vm.make_int(abs(int(obj.value)))
    if isinstance(obj, PyFloat):
        return vm.make_float(abs(obj.value))
    raise GuestTypeError(f"bad operand type for abs(): {obj.type_name!r}")


def _reduce_items(vm, args, name):
    _arity(args, 1, name)
    obj = args[0]
    if isinstance(obj, (PyList, PyTuple)):
        items = list(obj.items)
        base = obj.buffer_addr if isinstance(obj, PyList) else obj.addr + 24
        _clib_touch(vm, name, base, 8 * max(1, len(items)))
        return items
    if isinstance(obj, PyRange):
        _clib_alu(vm, name, max(1, len(obj)))
        return [vm.make_int(obj.start + i * obj.step)
                for i in range(len(obj))]
    raise GuestTypeError(f"{name}() argument must be a sequence")


def _bi_sum(vm, args):
    items = _reduce_items(vm, args, "sum")
    _clib_alu(vm, "sum.loop", max(1, len(items)))
    total = 0
    for item in items:
        total += _expect_number(item, "sum element")
    if all(isinstance(i, (PyInt, PyBool)) for i in items):
        return vm.make_int(int(total))
    return vm.make_float(total)


def _bi_min(vm, args):
    if len(args) >= 2:
        items = args
    else:
        items = _reduce_items(vm, args, "min")
    if not items:
        raise GuestValueError("min() of empty sequence")
    _clib_alu(vm, "min.loop", max(1, len(items)))
    best = items[0]
    for item in items[1:]:
        if vm._comparable_value(item) < vm._comparable_value(best):
            best = item
    vm.emit_incref(best)
    return best


def _bi_max(vm, args):
    if len(args) >= 2:
        items = args
    else:
        items = _reduce_items(vm, args, "max")
    if not items:
        raise GuestValueError("max() of empty sequence")
    _clib_alu(vm, "max.loop", max(1, len(items)))
    best = items[0]
    for item in items[1:]:
        if vm._comparable_value(item) > vm._comparable_value(best):
            best = item
    vm.emit_incref(best)
    return best


def _bi_ord(vm, args):
    _arity(args, 1, "ord")
    text = _expect_str(args[0], "ord() argument")
    if len(text) != 1:
        raise GuestTypeError("ord() expected a character")
    _clib_alu(vm, "ord", 2, cat=_EXEC)
    return vm.make_int(ord(text))


def _bi_chr(vm, args):
    _arity(args, 1, "chr")
    value = _expect_int(args[0], "chr() argument")
    if not 0 <= value < 0x110000:
        raise GuestValueError("chr() arg not in range")
    _clib_alu(vm, "chr", 2, cat=_EXEC)
    return vm.make_str(chr(value))


def _bi_int(vm, args):
    _arity(args, 1, "int")
    obj = args[0]
    _clib_alu(vm, "int", 4)
    if isinstance(obj, (PyInt, PyBool)):
        return vm.make_int(int(obj.value))
    if isinstance(obj, PyFloat):
        return vm.make_int(int(obj.value))
    if isinstance(obj, PyStr):
        _clib_touch(vm, "int.parse", obj.addr + 32, max(1, len(obj.value)))
        try:
            return vm.make_int(int(obj.value.strip()))
        except ValueError as exc:
            raise GuestValueError(str(exc)) from exc
    raise GuestTypeError(f"int() argument must be a number or string")


def _bi_float(vm, args):
    _arity(args, 1, "float")
    obj = args[0]
    _clib_alu(vm, "float", 4)
    if isinstance(obj, (PyInt, PyFloat, PyBool)):
        return vm.make_float(float(obj.value))
    if isinstance(obj, PyStr):
        _clib_touch(vm, "float.parse", obj.addr + 32,
                    max(1, len(obj.value)))
        try:
            return vm.make_float(float(obj.value.strip()))
        except ValueError as exc:
            raise GuestValueError(str(exc)) from exc
    raise GuestTypeError("float() argument must be a number or string")


def _bi_str(vm, args):
    _arity(args, 1, "str")
    obj = args[0]
    text = _to_text(obj)
    _clib_alu(vm, "str", 2 + len(text) // 4)
    return vm.make_str(text)


def _to_text(obj: GuestObject) -> str:
    if isinstance(obj, PyStr):
        return obj.value
    if isinstance(obj, PyBool):
        return "True" if obj.value else "False"
    if isinstance(obj, (PyInt, PyFloat)):
        return str(obj.value)
    if isinstance(obj, PyNone):
        return "None"
    return guest_repr(obj)


def _bi_bool(vm, args):
    _arity(args, 1, "bool")
    _clib_alu(vm, "bool", 2, cat=_EXEC)
    return TRUE if args[0].is_truthy() else FALSE


def _bi_list(vm, args):
    if not args:
        return vm.make_list([])
    _arity(args, 1, "list")
    obj = args[0]
    if isinstance(obj, (PyList, PyTuple)):
        items = list(obj.items)
        for item in items:
            vm.emit_incref(item)
        return vm.make_list(items)
    if isinstance(obj, PyRange):
        _clib_alu(vm, "list.range", max(1, len(obj)))
        return vm.make_list([vm.make_int(obj.start + i * obj.step)
                             for i in range(len(obj))])
    if isinstance(obj, PyStr):
        return vm.make_list([vm.make_str(ch) for ch in obj.value])
    if isinstance(obj, PyDict):
        keys = [entry[0] for entry in obj.entries.values()]
        for key in keys:
            vm.emit_incref(key)
        return vm.make_list(keys)
    raise GuestTypeError(f"list() argument must be iterable")


def _bi_tuple(vm, args):
    if not args:
        return vm.make_tuple(())
    lst = _bi_list(vm, args)
    return vm.make_tuple(tuple(lst.items))


def _bi_dict(vm, args):
    if args:
        raise GuestTypeError("dict() takes no arguments")
    return vm.make_dict()


def _bi_sorted(vm, args):
    _arity(args, 1, "sorted")
    items = _reduce_items(vm, args, "sorted")
    n = max(1, len(items))
    _clib_alu(vm, "sorted.cmp", n * max(1, n.bit_length()))
    try:
        ordered = sorted(items, key=vm._comparable_value)
    except TypeError as exc:
        raise GuestTypeError(str(exc)) from exc
    for item in ordered:
        vm.emit_incref(item)
    return vm.make_list(list(ordered))


def _bi_print(vm, args):
    text = " ".join(_to_text(a) for a in args)
    _clib_alu(vm, "print", 4 + len(text) // 8)
    vm.output.append(text)
    return NONE


# ----------------------------------------------------------------------
# Type methods (list / dict / str)
# ----------------------------------------------------------------------

def _m_list_append(vm, obj: PyList, args):
    _arity(args, 1, "list.append")
    item = args[0]
    m = vm.machine
    vm.emit_write_barrier(obj)
    if len(obj.items) >= obj.capacity:
        old_bytes = obj.buffer_bytes()
        obj.capacity = max(4, obj.capacity + (obj.capacity >> 1) + 2)
        new_addr = vm.alloc_buffer(obj.buffer_bytes())
        _clib_touch(vm, "list.grow.read", obj.buffer_addr, old_bytes,
                    cat=_ALLOC)
        _clib_touch(vm, "list.grow.write", new_addr, old_bytes,
                    write=True, cat=_ALLOC)
        vm.free_buffer(obj.buffer_addr, old_bytes)
        obj.buffer_addr = new_addr
    m.store(m.site("clib.list.append"), _EXEC,
            obj.buffer_addr + 8 * len(obj.items))
    vm.emit_incref(item)
    obj.items.append(item)
    return NONE


def _m_list_pop(vm, obj: PyList, args):
    if len(args) > 1:
        raise GuestTypeError("list.pop() takes at most one argument")
    if not obj.items:
        raise GuestIndexError("pop from empty list")
    index = _expect_int(args[0], "pop index") if args else -1
    if index < 0:
        index += len(obj.items)
    if not 0 <= index < len(obj.items):
        raise GuestIndexError("pop index out of range")
    m = vm.machine
    m.load(m.site("clib.list.pop"), _EXEC, obj.buffer_addr + 8 * index)
    moved = len(obj.items) - index - 1
    if moved:
        _clib_touch(vm, "list.pop.shift", obj.buffer_addr + 8 * index,
                    8 * moved, write=True, cat=_EXEC)
    return obj.items.pop(index)


def _m_list_extend(vm, obj: PyList, args):
    _arity(args, 1, "list.extend")
    other = args[0]
    if isinstance(other, (PyList, PyTuple)):
        new_items = list(other.items)
    elif isinstance(other, PyRange):
        new_items = [vm.make_int(other.start + i * other.step)
                     for i in range(len(other))]
    else:
        raise GuestTypeError("list.extend() argument must be a sequence")
    for item in new_items:
        _m_list_append(vm, obj, [item])
    return NONE


def _m_list_insert(vm, obj: PyList, args):
    _arity(args, 2, "list.insert")
    index = _expect_int(args[0], "insert index")
    item = args[1]
    if index < 0:
        index = max(0, index + len(obj.items))
    index = min(index, len(obj.items))
    moved = len(obj.items) - index
    if moved:
        _clib_touch(vm, "list.insert.shift", obj.buffer_addr + 8 * index,
                    8 * moved, write=True, cat=_EXEC)
    vm.emit_incref(item)
    obj.items.insert(index, item)
    if len(obj.items) > obj.capacity:
        obj.capacity = obj.capacity + (obj.capacity >> 1) + 2
    return NONE


def _m_list_remove(vm, obj: PyList, args):
    _arity(args, 1, "list.remove")
    target = vm._comparable_value(args[0])
    for i, item in enumerate(obj.items):
        vm.machine.load(vm.machine.site("clib.list.remove"), _EXEC,
                        obj.buffer_addr + 8 * i)
        if vm._comparable_value(item) == target:
            removed = obj.items.pop(i)
            vm.emit_decref(removed)
            return NONE
    raise GuestValueError("list.remove(x): x not in list")


def _m_list_index(vm, obj: PyList, args):
    _arity(args, 1, "list.index")
    target = vm._comparable_value(args[0])
    for i, item in enumerate(obj.items):
        vm.machine.load(vm.machine.site("clib.list.index"), _EXEC,
                        obj.buffer_addr + 8 * i)
        if vm._comparable_value(item) == target:
            return vm.make_int(i)
    raise GuestValueError("value not in list")


def _m_list_count(vm, obj: PyList, args):
    _arity(args, 1, "list.count")
    target = vm._comparable_value(args[0])
    _clib_touch(vm, "list.count", obj.buffer_addr,
                8 * max(1, len(obj.items)), cat=_EXEC)
    count = sum(1 for item in obj.items
                if vm._comparable_value(item) == target)
    return vm.make_int(count)


def _m_list_sort(vm, obj: PyList, args):
    if args:
        raise GuestTypeError("list.sort() takes no arguments")
    n = max(1, len(obj.items))
    _clib_alu(vm, "list.sort", n * max(1, n.bit_length()), cat=_EXEC)
    _clib_touch(vm, "list.sort.data", obj.buffer_addr, 8 * n, write=True,
                cat=_EXEC)
    try:
        obj.items.sort(key=vm._comparable_value)
    except TypeError as exc:
        raise GuestTypeError(str(exc)) from exc
    return NONE


def _m_list_reverse(vm, obj: PyList, args):
    if args:
        raise GuestTypeError("list.reverse() takes no arguments")
    _clib_touch(vm, "list.reverse", obj.buffer_addr,
                8 * max(1, len(obj.items)), write=True, cat=_EXEC)
    obj.items.reverse()
    return NONE


def _m_dict_get(vm, obj: PyDict, args):
    if not 1 <= len(args) <= 2:
        raise GuestTypeError("dict.get() takes 1 or 2 arguments")
    value = vm.dict_get(obj, args[0])
    if value is None:
        default = args[1] if len(args) == 2 else NONE
        vm.emit_incref(default)
        return default
    vm.emit_incref(value)
    return value


def _m_dict_pop(vm, obj: PyDict, args):
    if not 1 <= len(args) <= 2:
        raise GuestTypeError("dict.pop() takes 1 or 2 arguments")
    raw = raw_key(args[0])
    vm.dict_get(obj, args[0])  # lookup emission
    entry = obj.entries.pop(raw, None)
    if entry is None:
        if len(args) == 2:
            return args[1]
        raise GuestKeyError(f"key not found: {raw!r}")
    vm.emit_decref(entry[0])
    return entry[1]


def _m_dict_keys(vm, obj: PyDict, args):
    if args:
        raise GuestTypeError("dict.keys() takes no arguments")
    _clib_touch(vm, "dict.keys", obj.table_addr, obj.table_bytes(),
                cat=_EXEC)
    keys = [entry[0] for entry in obj.entries.values()]
    for key in keys:
        vm.emit_incref(key)
    return vm.make_list(keys)


def _m_dict_values(vm, obj: PyDict, args):
    if args:
        raise GuestTypeError("dict.values() takes no arguments")
    _clib_touch(vm, "dict.values", obj.table_addr, obj.table_bytes(),
                cat=_EXEC)
    values = [entry[1] for entry in obj.entries.values()]
    for value in values:
        vm.emit_incref(value)
    return vm.make_list(values)


def _m_dict_items(vm, obj: PyDict, args):
    if args:
        raise GuestTypeError("dict.items() takes no arguments")
    _clib_touch(vm, "dict.items", obj.table_addr, obj.table_bytes(),
                cat=_EXEC)
    pairs = []
    for key, value in obj.entries.values():
        vm.emit_incref(key)
        vm.emit_incref(value)
        pairs.append(vm.make_tuple((key, value)))
    return vm.make_list(pairs)


def _m_str_join(vm, obj: PyStr, args):
    _arity(args, 1, "str.join")
    seq = args[0]
    if not isinstance(seq, (PyList, PyTuple)):
        raise GuestTypeError("str.join() argument must be a sequence")
    parts = []
    for item in seq.items:
        parts.append(_expect_str(item, "join element"))
    result = obj.value.join(parts)
    _clib_alu(vm, "str.join", 2 + len(parts), cat=_EXEC)
    return vm.make_str(result)


def _m_str_split(vm, obj: PyStr, args):
    if len(args) > 1:
        raise GuestTypeError("str.split() takes at most one argument")
    _clib_touch(vm, "str.split", obj.addr + 32, max(1, len(obj.value)),
                cat=_EXEC)
    if args:
        sep = _expect_str(args[0], "split separator")
        pieces = obj.value.split(sep)
    else:
        pieces = obj.value.split()
    return vm.make_list([vm.make_str(p) for p in pieces])


def _str_simple(name: str, func):
    def handler(vm, obj: PyStr, args):
        if args:
            raise GuestTypeError(f"str.{name}() takes no arguments")
        _clib_touch(vm, f"str.{name}", obj.addr + 32,
                    max(1, len(obj.value)), cat=_EXEC)
        return vm.make_str(func(obj.value))
    return handler


def _m_str_replace(vm, obj: PyStr, args):
    _arity(args, 2, "str.replace")
    old = _expect_str(args[0], "replace target")
    new = _expect_str(args[1], "replace value")
    _clib_touch(vm, "str.replace", obj.addr + 32,
                max(1, len(obj.value)), cat=_EXEC)
    return vm.make_str(obj.value.replace(old, new))


def _m_str_find(vm, obj: PyStr, args):
    _arity(args, 1, "str.find")
    needle = _expect_str(args[0], "find argument")
    _clib_touch(vm, "str.find", obj.addr + 32, max(1, len(obj.value)),
                cat=_EXEC)
    return vm.make_int(obj.value.find(needle))


def _m_str_startswith(vm, obj: PyStr, args):
    _arity(args, 1, "str.startswith")
    prefix = _expect_str(args[0], "startswith argument")
    _clib_alu(vm, "str.startswith", 2 + len(prefix) // 8, cat=_EXEC)
    return TRUE if obj.value.startswith(prefix) else FALSE


def _m_str_endswith(vm, obj: PyStr, args):
    _arity(args, 1, "str.endswith")
    suffix = _expect_str(args[0], "endswith argument")
    _clib_alu(vm, "str.endswith", 2 + len(suffix) // 8, cat=_EXEC)
    return TRUE if obj.value.endswith(suffix) else FALSE


def _m_str_count(vm, obj: PyStr, args):
    _arity(args, 1, "str.count")
    needle = _expect_str(args[0], "count argument")
    _clib_touch(vm, "str.count", obj.addr + 32, max(1, len(obj.value)),
                cat=_EXEC)
    return vm.make_int(obj.value.count(needle))


_LIST_METHODS = {
    "append": _m_list_append, "pop": _m_list_pop, "extend": _m_list_extend,
    "insert": _m_list_insert, "remove": _m_list_remove,
    "index": _m_list_index, "count": _m_list_count, "sort": _m_list_sort,
    "reverse": _m_list_reverse,
}

_DICT_METHODS = {
    "get": _m_dict_get, "pop": _m_dict_pop, "keys": _m_dict_keys,
    "values": _m_dict_values, "items": _m_dict_items,
}

_STR_METHODS = {
    "join": _m_str_join, "split": _m_str_split,
    "upper": _str_simple("upper", str.upper),
    "lower": _str_simple("lower", str.lower),
    "strip": _str_simple("strip", str.strip),
    "replace": _m_str_replace, "find": _m_str_find,
    "startswith": _m_str_startswith, "endswith": _m_str_endswith,
    "count": _m_str_count,
}


def lookup_type_method(obj: GuestObject, name: str):
    """Resolve a method on a builtin type; returns handler(vm, obj, args)."""
    if isinstance(obj, PyList):
        return _LIST_METHODS.get(name)
    if isinstance(obj, PyDict):
        return _DICT_METHODS.get(name)
    if isinstance(obj, PyStr):
        return _STR_METHODS.get(name)
    if isinstance(obj, PyModule):
        func = obj.functions.get(name)
        if func is None:
            return None
        return lambda vm, _obj, args, _f=func: _f(vm, args)
    return None


# ----------------------------------------------------------------------
# Modeled C library: math
# ----------------------------------------------------------------------

def _math1(name: str, func):
    def handler(vm, args):
        _arity(args, 1, f"math.{name}")
        value = _expect_number(args[0], f"math.{name} argument")
        vm.machine.fpu(vm.machine.site(f"clib.math.{name}"), _CLIB, n=4)
        try:
            return vm.make_float(func(value))
        except ValueError as exc:
            raise GuestValueError(str(exc)) from exc
    return handler


def _math2(name: str, func):
    def handler(vm, args):
        _arity(args, 2, f"math.{name}")
        a = _expect_number(args[0], f"math.{name} argument")
        b = _expect_number(args[1], f"math.{name} argument")
        vm.machine.fpu(vm.machine.site(f"clib.math.{name}"), _CLIB, n=5)
        try:
            return vm.make_float(func(a, b))
        except ValueError as exc:
            raise GuestValueError(str(exc)) from exc
    return handler


def _math_floor(vm, args):
    _arity(args, 1, "math.floor")
    value = _expect_number(args[0], "math.floor argument")
    vm.machine.fpu(vm.machine.site("clib.math.floor"), _CLIB, n=2)
    return vm.make_int(int(_math.floor(value)))


# ----------------------------------------------------------------------
# Modeled C library: pickle / json
# ----------------------------------------------------------------------

def _serialize(vm, obj: GuestObject, out: list[str], label: str) -> None:
    """Real recursive serialization with per-node C-call emission."""
    m = vm.machine
    with m.c_call(f"clib.{label}.save_site", f"clib.{label}.save",
                  indirect=True, args=2, saves=2, category=_CLIB):
        if isinstance(obj, PyBool):
            out.append("b1" if obj.value else "b0")
            _clib_alu(vm, f"{label}.bool", 8)
        elif isinstance(obj, PyInt):
            text = str(obj.value)
            out.append(f"i{text};")
            _clib_alu(vm, f"{label}.int", 14 + 2 * len(text))
        elif isinstance(obj, PyFloat):
            text = repr(obj.value)
            out.append(f"f{text};")
            _clib_alu(vm, f"{label}.float", 20 + 2 * len(text))
        elif isinstance(obj, PyStr):
            out.append(f"s{len(obj.value)};{obj.value}")
            _clib_touch(vm, f"{label}.str", obj.addr + 32,
                        max(1, len(obj.value)))
            _clib_alu(vm, f"{label}.strscan", 8 + len(obj.value))
        elif isinstance(obj, PyNone):
            out.append("n")
        elif isinstance(obj, (PyList, PyTuple)):
            tag = "l" if isinstance(obj, PyList) else "t"
            out.append(f"{tag}{len(obj.items)};")
            _clib_alu(vm, f"{label}.seq", 12)
            for item in obj.items:
                _serialize(vm, item, out, label)
        elif isinstance(obj, PyDict):
            out.append(f"d{len(obj.entries)};")
            _clib_alu(vm, f"{label}.dict", 16)
            for key_obj, value_obj in obj.entries.values():
                _serialize(vm, key_obj, out, label)
                _serialize(vm, value_obj, out, label)
        else:
            raise GuestTypeError(
                f"cannot serialize {obj.type_name!r} object")


class _Parser:
    """Parser for the serialization format; deserializes for real."""

    def __init__(self, vm, text: str, label: str) -> None:
        self.vm = vm
        self.text = text
        self.pos = 0
        self.label = label

    def fail(self, message: str):
        raise GuestValueError(
            f"{self.label}: corrupt data at offset {self.pos}: {message}")

    def take_until(self, terminator: str) -> str:
        end = self.text.find(terminator, self.pos)
        if end < 0:
            self.fail(f"expected {terminator!r}")
        piece = self.text[self.pos:end]
        self.pos = end + 1
        return piece

    def parse(self) -> GuestObject:
        vm = self.vm
        m = vm.machine
        if self.pos >= len(self.text):
            self.fail("unexpected end of data")
        tag = self.text[self.pos]
        self.pos += 1
        with m.c_call(f"clib.{self.label}.load_site",
                      f"clib.{self.label}.load", indirect=True,
                      args=2, saves=2, category=_CLIB):
            _clib_alu(vm, f"{self.label}.parse", 16)
            if tag == "b":
                flag = self.text[self.pos]
                self.pos += 1
                return TRUE if flag == "1" else FALSE
            if tag == "i":
                return vm.make_int(int(self.take_until(";")))
            if tag == "f":
                return vm.make_float(float(self.take_until(";")))
            if tag == "n":
                return NONE
            if tag == "s":
                length = int(self.take_until(";"))
                piece = self.text[self.pos:self.pos + length]
                if len(piece) != length:
                    self.fail("truncated string")
                self.pos += length
                _clib_alu(vm, f"{self.label}.strload", 8 + length)
                return vm.make_str(piece)
            if tag in ("l", "t"):
                count = int(self.take_until(";"))
                items = [self.parse() for _ in range(count)]
                if tag == "l":
                    return vm.make_list(items)
                return vm.make_tuple(tuple(items))
            if tag == "d":
                count = int(self.take_until(";"))
                result = vm.make_dict()
                for _ in range(count):
                    key = self.parse()
                    value = self.parse()
                    vm.dict_set(result, key, value)
                return result
        self.fail(f"unknown tag {tag!r}")


def _pickle_dumps(vm, args):
    _arity(args, 1, "pickle.dumps")
    out: list[str] = []
    _serialize(vm, args[0], out, "pickle")
    text = "".join(out)
    scratch = _scratch(vm, len(text))
    _clib_touch(vm, "pickle.out", scratch, max(1, len(text)), write=True)
    return vm.make_str(text)


def _pickle_loads(vm, args):
    _arity(args, 1, "pickle.loads")
    text = _expect_str(args[0], "pickle.loads argument")
    _clib_touch(vm, "pickle.in", args[0].addr + 32, max(1, len(text)))
    return _Parser(vm, text, "pickle").parse()


def _json_dumps(vm, args):
    _arity(args, 1, "json.dumps")
    out: list[str] = []
    _serialize(vm, args[0], out, "json")
    text = "".join(out)
    scratch = _scratch(vm, len(text))
    _clib_touch(vm, "json.out", scratch, max(1, len(text)), write=True)
    return vm.make_str(text)


def _json_loads(vm, args):
    _arity(args, 1, "json.loads")
    text = _expect_str(args[0], "json.loads argument")
    _clib_touch(vm, "json.in", args[0].addr + 32, max(1, len(text)))
    return _Parser(vm, text, "json").parse()


# ----------------------------------------------------------------------
# Modeled C library: re (simplified engine, real matching via host re)
# ----------------------------------------------------------------------

def _re_cost(vm, pattern: str, text_obj: PyStr) -> None:
    """Scan cost: the engine walks the subject string, with backtracking
    pressure proportional to pattern complexity."""
    meta = sum(pattern.count(c) for c in "*+?[](|")
    factor = 1 + min(meta, 6)
    m = vm.machine
    # Pattern compilation (sre_compile work), paid per call site.
    _clib_alu(vm, "re.compile", 40 + 12 * len(pattern))
    scan_bytes = max(1, len(text_obj.value))
    _clib_touch(vm, "re.scan", text_obj.addr + 32, scan_bytes)
    _clib_alu(vm, "re.engine", max(4, (scan_bytes * factor) // 3))
    with m.c_call("clib.re.dispatch_site", "clib.re.dispatch",
                  indirect=True, args=3, saves=3, category=_CLIB):
        _clib_alu(vm, "re.inner", 4)


def _re_search(vm, args):
    _arity(args, 2, "re.search")
    pattern = _expect_str(args[0], "re pattern")
    text = args[1]
    subject = _expect_str(text, "re subject")
    _re_cost(vm, pattern, text)
    import re as host_re
    try:
        match = host_re.search(pattern, subject)
    except host_re.error as exc:
        raise GuestValueError(f"bad pattern: {exc}") from exc
    if match is None:
        return NONE
    return vm.make_str(match.group(0))


def _re_match(vm, args):
    _arity(args, 2, "re.match")
    pattern = _expect_str(args[0], "re pattern")
    text = args[1]
    subject = _expect_str(text, "re subject")
    _re_cost(vm, pattern, text)
    import re as host_re
    try:
        match = host_re.match(pattern, subject)
    except host_re.error as exc:
        raise GuestValueError(f"bad pattern: {exc}") from exc
    if match is None:
        return NONE
    return vm.make_str(match.group(0))


def _re_findall(vm, args):
    _arity(args, 2, "re.findall")
    pattern = _expect_str(args[0], "re pattern")
    text = args[1]
    subject = _expect_str(text, "re subject")
    _re_cost(vm, pattern, text)
    import re as host_re
    try:
        found = host_re.findall(pattern, subject)
    except host_re.error as exc:
        raise GuestValueError(f"bad pattern: {exc}") from exc
    return vm.make_list([vm.make_str(f if isinstance(f, str) else f[0])
                         for f in found])


# ----------------------------------------------------------------------
# Modeled C library: rnd (deterministic LCG)
# ----------------------------------------------------------------------

_LCG_A = 6364136223846793005
_LCG_C = 1442695040888963407
_LCG_MASK = (1 << 64) - 1


def _rnd_state(vm) -> int:
    return getattr(vm, "_rnd_state", 0x9E3779B97F4A7C15)


def _rnd_step(vm) -> int:
    state = (_rnd_state(vm) * _LCG_A + _LCG_C) & _LCG_MASK
    vm._rnd_state = state
    _clib_alu(vm, "rnd.step", 3)
    return state


def _rnd_seed(vm, args):
    _arity(args, 1, "rnd.seed")
    vm._rnd_state = (_expect_int(args[0], "seed")
                     ^ 0x9E3779B97F4A7C15) & _LCG_MASK
    return NONE


def _rnd_random(vm, args):
    if args:
        raise GuestTypeError("rnd.random() takes no arguments")
    return vm.make_float((_rnd_step(vm) >> 11) / float(1 << 53))


def _rnd_randint(vm, args):
    _arity(args, 2, "rnd.randint")
    low = _expect_int(args[0], "randint low")
    high = _expect_int(args[1], "randint high")
    if high < low:
        raise GuestValueError("randint: empty range")
    return vm.make_int(low + _rnd_step(vm) % (high - low + 1))


# ----------------------------------------------------------------------
# Installation
# ----------------------------------------------------------------------

def install_builtins(vm) -> None:
    """Register every builtin function and module on ``vm``."""
    vm.output = []
    simple = {
        "len": _bi_len, "range": _bi_range, "abs": _bi_abs,
        "sum": _bi_sum, "min": _bi_min, "max": _bi_max,
        "ord": _bi_ord, "chr": _bi_chr, "int": _bi_int,
        "float": _bi_float, "str": _bi_str, "bool": _bi_bool,
        "list": _bi_list, "tuple": _bi_tuple, "dict": _bi_dict,
        "sorted": _bi_sorted, "print": _bi_print,
    }
    inlinable = {"len", "abs", "ord", "chr", "bool", "range"}
    for name, handler in simple.items():
        builtin = PyBuiltin(name, handler, inline_ok=name in inlinable)
        vm._make_immortal(builtin)
        vm.builtins[name] = builtin

    modules = {
        "math": {
            "sqrt": _math1("sqrt", _math.sqrt),
            "sin": _math1("sin", _math.sin),
            "cos": _math1("cos", _math.cos),
            "tan": _math1("tan", _math.tan),
            "exp": _math1("exp", _math.exp),
            "log": _math1("log", _math.log),
            "atan2": _math2("atan2", _math.atan2),
            "pow": _math2("pow", _math.pow),
            "floor": _math_floor,
        },
        "pickle": {"dumps": _pickle_dumps, "loads": _pickle_loads},
        "json": {"dumps": _json_dumps, "loads": _json_loads},
        "re": {"search": _re_search, "match": _re_match,
               "findall": _re_findall},
        "rnd": {"seed": _rnd_seed, "random": _rnd_random,
                "randint": _rnd_randint},
    }
    for module_name, functions in modules.items():
        module = PyModule(module_name, functions)
        vm._make_immortal(module)
        vm.builtins[module_name] = module
