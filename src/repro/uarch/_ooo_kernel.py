"""Optional compiled kernel for the OOO-core recurrence.

The OOO model is a pure forward max-plus recurrence over integer ticks
(:func:`~repro.uarch.ooo_core.ooo_cycles_scalar`), so a ~60-line C loop
reproduces it bit for bit at memory speed. When a C compiler is
available this module builds that loop into a per-process shared
library (one ``cc -O2`` invocation, cached for the process lifetime)
and the vectorized backend dispatches single-config walks to it,
releasing the GIL so config sweeps can also thread. Everything is
best-effort: no compiler, a failed build, or ``REPRO_OOO_KERNEL=off``
all degrade silently to the batched-NumPy engine.

This is deliberately *not* a build-time extension: the repository must
stay importable from source with nothing but numpy, so the kernel is
an opportunistic accelerator with the same contract as the pure-Python
engines — bit-identical results for every trace and config.
"""

from __future__ import annotations

import atexit
import ctypes
import os
import shutil
import subprocess
import sys
import tempfile
import threading

import numpy as np

#: Environment switch: ``auto`` (default) compiles when possible,
#: ``off`` disables the kernel entirely (pure-NumPy vector path).
KERNEL_ENV = "REPRO_OOO_KERNEL"

_MAX_MSHRS = 64

_SOURCE = r"""
#include <stdint.h>

#define MAX_MSHRS 64

void ooo_kernel(int64_t n,
                const int64_t *kind, const int64_t *dep,
                const int64_t *dlev, const int64_t *ilev,
                const uint8_t *misp,
                int64_t front_interval, int64_t rob, int64_t penalty,
                const int64_t *load_lat,   /* 4 entries */
                const int64_t *fetch_pen,  /* 4 entries */
                const int64_t *kind_lat,   /* per-kind latency */
                int64_t kind_load, int64_t kind_store,
                int64_t store_latency,
                int64_t line_size, int64_t tpb, int64_t mem_latency,
                int64_t mshrs,
                int64_t ring_mask, int64_t *fin,  /* ring_mask + 1 */
                int64_t *out /* [1]: total ticks */)
{
    int64_t front = 0, mem_bytes = 0, last_finish = 0;
    int64_t miss_ring[MAX_MSHRS] = {0};
    int64_t miss_count = 0;
    for (int64_t i = 0; i < n; i++) {
        int64_t start = front;
        front += front_interval;
        int64_t level = ilev[i];
        if (level > 0) {
            int64_t bubble = fetch_pen[level];
            front += bubble;
            start += bubble;
            if (level == 3) mem_bytes += line_size;
        }
        int64_t d = dep[i];
        if (d > 0 && d <= i) {
            int64_t p = fin[(i - d) & ring_mask];
            if (p > start) start = p;
        }
        if (i >= rob) {
            int64_t o = fin[(i - rob) & ring_mask];
            if (o > start) start = o;
        }
        int64_t k = kind[i];
        int64_t latency;
        if (k == kind_load || k == kind_store) {
            int64_t service = dlev[i];
            if (service == 3) {
                mem_bytes += line_size;
                int64_t bus_ready = mem_bytes * tpb - mem_latency;
                if (bus_ready > start) start = bus_ready;
                int64_t slot = miss_count % mshrs;
                if (miss_ring[slot] > start) start = miss_ring[slot];
                miss_ring[slot] = start + mem_latency;
                miss_count++;
            }
            if (k == kind_store)
                latency = store_latency;
            else
                latency = service >= 0 ? load_lat[service] : kind_lat[k];
        } else {
            latency = kind_lat[k];
        }
        int64_t finish = start + latency;
        fin[i & ring_mask] = finish;
        if (finish > last_finish) last_finish = finish;
        if (misp[i]) {
            int64_t restart = finish + penalty;
            if (restart > front) front = restart;
        }
    }
    out[0] = last_finish > front ? last_finish : front;
}
"""

_lock = threading.Lock()
_kernel = None
_kernel_tried = False


def _build() -> ctypes.CDLL | None:
    cc = (os.environ.get("CC") or shutil.which("cc")
          or shutil.which("gcc") or shutil.which("clang"))
    if cc is None:
        return None
    tmpdir = tempfile.mkdtemp(prefix="repro-ooo-kernel-")
    atexit.register(shutil.rmtree, tmpdir, ignore_errors=True)
    src = os.path.join(tmpdir, "ooo_kernel.c")
    suffix = ".dylib" if sys.platform == "darwin" else ".so"
    lib = os.path.join(tmpdir, "ooo_kernel" + suffix)
    with open(src, "w", encoding="utf-8") as fh:
        fh.write(_SOURCE)
    cmd = [cc, "-O2", "-shared", "-fPIC", "-o", lib, src]
    try:
        subprocess.run(cmd, check=True, capture_output=True, timeout=120)
        dll = ctypes.CDLL(lib)
    except (OSError, subprocess.SubprocessError):
        return None
    i64 = ctypes.c_int64
    p64 = ctypes.POINTER(ctypes.c_int64)
    pu8 = ctypes.POINTER(ctypes.c_uint8)
    dll.ooo_kernel.restype = None
    dll.ooo_kernel.argtypes = [
        i64, p64, p64, p64, p64, pu8,
        i64, i64, i64, p64, p64, p64,
        i64, i64, i64, i64, i64, i64, i64,
        i64, p64, p64,
    ]
    return dll


def get_kernel() -> ctypes.CDLL | None:
    """The compiled kernel, building it on first use (or ``None``)."""
    global _kernel, _kernel_tried
    if os.environ.get(KERNEL_ENV, "auto").lower() in ("off", "0", "no"):
        return None
    with _lock:
        if not _kernel_tried:
            _kernel_tried = True
            _kernel = _build()
    return _kernel


def kernel_available() -> bool:
    return get_kernel() is not None


def _as_i64(arr: np.ndarray) -> np.ndarray:
    return np.ascontiguousarray(arr, dtype=np.int64)


class PreparedTrace:
    """Kernel-ready int64 views of one trace + memory-side state.

    Conversions and the dep-column scan cost a few milliseconds on a
    million-instruction trace; preparing once lets a batched config
    sweep pay them once instead of once per config.
    """

    __slots__ = ("n", "kind", "dep", "dlev", "ilev", "misp", "max_dep")

    def __init__(self, trace_arrays, dlevel, ilevel,
                 mispredicted) -> None:
        self.n = len(trace_arrays["pc"])
        self.kind = _as_i64(trace_arrays["kind"])
        self.dep = _as_i64(trace_arrays["dep"])
        self.dlev = _as_i64(dlevel)
        self.ilev = _as_i64(ilevel)
        self.misp = np.ascontiguousarray(mispredicted, dtype=np.uint8)
        self.max_dep = 0
        if self.n:
            valid = ((self.dep > 0)
                     & (self.dep <= np.arange(self.n, dtype=np.int64)))
            if valid.any():
                self.max_dep = int(self.dep[valid].max())


def prepare(trace_arrays, dlevel, ilevel, mispredicted) -> PreparedTrace:
    return PreparedTrace(trace_arrays, dlevel, ilevel, mispredicted)


def run_prepared(prep: PreparedTrace, config) -> float:
    """One compiled walk of a prepared trace; == the scalar loop.

    Callers must check :func:`kernel_available` first.
    """
    from .ooo_core import (KIND_LATENCY_TICKS, MSHRS, TICKS, _RING,
                           _fetch_penalties, _load_latencies,
                           front_interval_ticks, ticks_per_byte,
                           _LOAD, _STORE)
    dll = get_kernel()
    n = prep.n
    if n == 0:
        return 0.0
    if MSHRS > _MAX_MSHRS:  # pragma: no cover - compile-time constant
        raise ValueError("MSHRS exceeds the kernel's ring capacity")
    load_lat = _as_i64(_load_latencies(config))
    fetch_pen = _as_i64(_fetch_penalties(config))
    kind_lat = _as_i64(KIND_LATENCY_TICKS)
    # Same growth rule as ooo_core.ring_size, off the prescanned dep max.
    need = max(min(config.core.rob_entries, n - 1), prep.max_dep)
    ring = _RING
    while ring <= need:
        ring <<= 1
    fin = np.zeros(ring, dtype=np.int64)
    out = np.zeros(1, dtype=np.int64)

    p64 = ctypes.POINTER(ctypes.c_int64)
    pu8 = ctypes.POINTER(ctypes.c_uint8)

    def p(a):
        return a.ctypes.data_as(p64)

    dll.ooo_kernel(
        n, p(prep.kind), p(prep.dep), p(prep.dlev), p(prep.ilev),
        prep.misp.ctypes.data_as(pu8),
        front_interval_ticks(config), config.core.rob_entries,
        config.branch.mispredict_penalty * TICKS,
        p(load_lat), p(fetch_pen), p(kind_lat),
        _LOAD, _STORE, TICKS,
        config.l1d.line_size, ticks_per_byte(config),
        config.memory.latency * TICKS, MSHRS,
        ring - 1, p(fin), p(out))
    return out[0] / TICKS


def run_kernel(trace_arrays, dlevel, ilevel, mispredicted, config) -> float:
    """One compiled walk of the trace; bit-identical to the scalar loop.

    Callers must check :func:`kernel_available` first.
    """
    return run_prepared(
        prepare(trace_arrays, dlevel, ilevel, mispredicted), config)
