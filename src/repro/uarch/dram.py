"""DDR4-2400-analog main memory model.

DRAMSim2 in the paper's setup contributes two first-order effects: a fixed
access latency (Table I: 173 cycles) and a finite bandwidth that throttles
miss streams (Figure 7f sweeps 200 MBps to 25.6 GBps). Both are captured
here; banks, rows, and scheduling are below the fidelity the paper's
figures depend on.
"""

from __future__ import annotations

from ..config import MemoryConfig


class DramModel:
    """Latency plus token-bucket bandwidth accounting."""

    def __init__(self, config: MemoryConfig, line_size: int = 64) -> None:
        self.config = config
        self.line_size = line_size
        self.bytes_transferred = 0
        self.accesses = 0

    @property
    def latency(self) -> int:
        return self.config.latency

    def line_transfer_cycles(self) -> float:
        """Cycles of bus occupancy one line transfer consumes."""
        return self.line_size / self.config.bytes_per_cycle

    def record_access(self, lines: int = 1) -> None:
        """Account traffic for ``lines`` line transfers (fill or writeback)."""
        self.accesses += lines
        self.bytes_transferred += lines * self.line_size

    def earliest_start(self, now: float) -> float:
        """Earliest cycle a new transfer may start given past traffic.

        With a token-bucket model, all previously transferred bytes must fit
        under the bandwidth envelope before a new request can occupy the
        bus. Returns ``now`` when bandwidth is not the bottleneck.
        """
        required = self.bytes_transferred / self.config.bytes_per_cycle
        return required if required > now else now
