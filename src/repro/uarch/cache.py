"""Set-associative cache hierarchy with LRU replacement.

The hierarchy mirrors Table I: split L1I/L1D backed by a unified L2 and a
last-level cache. Lookups walk down the levels; a miss at the LLC is
serviced by memory. Lines written at any level are tracked so evictions
of dirty lines can be charged as writeback traffic for the bandwidth
model.

Service levels returned by the simulation functions are encoded as:

====  =================================
-1    not a memory access
 0    L1 hit
 1    L2 hit
 2    L3 (LLC) hit
 3    serviced by main memory
====  =================================
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..config import CacheConfig, MachineConfig
from ..host.isa import InstrKind

SERVICE_NONE = -1
SERVICE_L1 = 0
SERVICE_L2 = 1
SERVICE_L3 = 2
SERVICE_MEM = 3


@dataclass
class CacheStats:
    """Per-level access/miss counters plus traffic for the DRAM model."""

    name: str
    accesses: int = 0
    misses: int = 0
    evictions: int = 0
    writebacks: int = 0

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0


class _Level:
    """One cache level. Sets are MRU-ordered lists of tags."""

    __slots__ = ("config", "stats", "sets", "set_mask", "line_bits",
                 "ways", "dirty")

    def __init__(self, config: CacheConfig) -> None:
        self.config = config
        self.stats = CacheStats(config.name)
        num_sets = config.num_sets
        self.sets: list[list[int]] = [[] for _ in range(num_sets)]
        self.set_mask = num_sets - 1
        self.line_bits = config.line_size.bit_length() - 1
        self.ways = config.ways
        self.dirty: set[int] = set()

    def access(self, line: int, write: bool) -> bool:
        """Look up one line; returns True on hit. Updates LRU and dirty."""
        stats = self.stats
        stats.accesses += 1
        set_idx = line & self.set_mask
        tag = line >> 1  # any injective function of the line id works
        ways = self.sets[set_idx]
        try:
            pos = ways.index(tag)
        except ValueError:
            stats.misses += 1
            ways.insert(0, tag)
            if len(ways) > self.ways:
                victim = ways.pop()
                stats.evictions += 1
                if (set_idx, victim) in self.dirty:
                    self.dirty.discard((set_idx, victim))
                    stats.writebacks += 1
            if write:
                self.dirty.add((set_idx, tag))
            return False
        if pos:
            ways.insert(0, ways.pop(pos))
        if write:
            self.dirty.add((set_idx, tag))
        return True


class CacheHierarchy:
    """L1I + L1D + unified L2 + LLC, non-inclusive."""

    def __init__(self, config: MachineConfig) -> None:
        self.config = config
        self.l1i = _Level(config.l1i)
        self.l1d = _Level(config.l1d)
        self.l2 = _Level(config.l2)
        self.l3 = _Level(config.l3)
        self.line_size = config.l1d.line_size
        self.line_bits = self.line_size.bit_length() - 1

    def data_access(self, line: int, write: bool) -> int:
        """Walk the data path for one line; return the service level."""
        if self.l1d.access(line, write):
            return SERVICE_L1
        if self.l2.access(line, write):
            return SERVICE_L2
        if self.l3.access(line, write):
            return SERVICE_L3
        return SERVICE_MEM

    def fetch_access(self, line: int) -> int:
        """Walk the instruction-fetch path for one line."""
        if self.l1i.access(line, False):
            return SERVICE_L1
        if self.l2.access(line, False):
            return SERVICE_L2
        if self.l3.access(line, False):
            return SERVICE_L3
        return SERVICE_MEM

    def stats(self) -> dict[str, CacheStats]:
        return {"L1I": self.l1i.stats, "L1D": self.l1d.stats,
                "L2": self.l2.stats, "L3": self.l3.stats}


@dataclass
class HierarchySimResult:
    """Per-instruction service levels plus per-level counters."""

    dlevel: np.ndarray   # int8, SERVICE_* per instruction (-1 if not mem)
    ilevel: np.ndarray   # int8, fetch service level (0 if same-line fetch)
    stats: dict[str, CacheStats] = field(default_factory=dict)
    mem_lines: int = 0   # lines transferred from memory (fills + writebacks)

    @property
    def llc_miss_rate(self) -> float:
        llc = self.stats["L3"]
        return llc.miss_rate


def simulate_cache_hierarchy(trace_arrays: dict[str, np.ndarray],
                             config: MachineConfig) -> HierarchySimResult:
    """Run the whole trace through a fresh cache hierarchy.

    Instruction fetch is simulated at line granularity: consecutive
    instructions on the same line share one fetch access, the way a fetch
    buffer would.
    """
    hierarchy = CacheHierarchy(config)
    n = len(trace_arrays["pc"])
    dlevel = np.full(n, SERVICE_NONE, dtype=np.int8)
    ilevel = np.zeros(n, dtype=np.int8)
    if n == 0:
        return HierarchySimResult(dlevel, ilevel, hierarchy.stats(), 0)

    line_bits = hierarchy.line_bits
    kinds = trace_arrays["kind"]
    addrs = trace_arrays["addr"]

    # --- data path -----------------------------------------------------
    mem_mask = (kinds == int(InstrKind.LOAD)) | \
               (kinds == int(InstrKind.STORE))
    mem_idx = np.nonzero(mem_mask)[0]
    if len(mem_idx):
        mem_lines = (addrs[mem_idx] >> line_bits).tolist()
        mem_writes = (kinds[mem_idx] == int(InstrKind.STORE)).tolist()
        access = hierarchy.data_access
        results = [access(line, write)
                   for line, write in zip(mem_lines, mem_writes)]
        dlevel[mem_idx] = results

    # --- instruction fetch path -----------------------------------------
    pc_lines = trace_arrays["pc"] >> line_bits
    change = np.empty(n, dtype=bool)
    change[0] = True
    np.not_equal(pc_lines[1:], pc_lines[:-1], out=change[1:])
    fetch_idx = np.nonzero(change)[0]
    fetch_lines = pc_lines[fetch_idx].tolist()
    fetch = hierarchy.fetch_access
    ilevel[fetch_idx] = [fetch(line) for line in fetch_lines]

    stats = hierarchy.stats()
    mem_lines_moved = (stats["L3"].misses + stats["L3"].writebacks)
    return HierarchySimResult(dlevel, ilevel, stats, mem_lines_moved)
