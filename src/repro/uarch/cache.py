"""Set-associative cache hierarchy with LRU replacement.

The hierarchy mirrors Table I: split L1I/L1D backed by a unified L2 and a
last-level cache. Lookups walk down the levels; a miss at the LLC is
serviced by memory. Lines written at any level are tracked so evictions
of dirty lines can be charged as writeback traffic for the bandwidth
model.

Service levels returned by the simulation functions are encoded as:

====  =================================
-1    not a memory access
 0    L1 hit
 1    L2 hit
 2    L3 (LLC) hit
 3    serviced by main memory
====  =================================

Two interchangeable engines back :func:`simulate_cache_hierarchy`:

* the **scalar** engine walks one access at a time through MRU-ordered
  tag lists (the original implementation, kept as the reference), and
* the **vectorized** engine batches accesses with NumPy: each level
  keeps per-set tag/recency-stamp/dirty matrices, accesses to
  *different* sets are processed together in "waves" (an access lands
  in wave ``k`` if it is the ``k``-th access to its set), and runs of
  consecutive same-line accesses within a set collapse to one state
  update plus guaranteed hits. Both produce bit-identical service
  levels and :class:`CacheStats`; ``tests/test_vectorized_equivalence.
  py`` enforces that on randomized traces.

The engine is picked by the ``backend`` argument or the
``REPRO_SIM_BACKEND`` environment variable (``auto``/``vector``/
``scalar``). ``auto`` — the default — uses the vectorized engine but
lets each level fall back to the scalar walk when the trace offers too
little set-level parallelism to pay for the batched bookkeeping (tiny
scaled caches, or streams dominated by a few hot sets); even then the
run-collapse preprocessing applies, so the scalar walk only touches
run heads.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

import numpy as np

from ..config import CacheConfig, MachineConfig
from ..errors import ReproError
from ..host.isa import InstrKind

SERVICE_NONE = -1
SERVICE_L1 = 0
SERVICE_L2 = 1
SERVICE_L3 = 2
SERVICE_MEM = 3


@dataclass
class CacheStats:
    """Per-level access/miss counters plus traffic for the DRAM model."""

    name: str
    accesses: int = 0
    misses: int = 0
    evictions: int = 0
    writebacks: int = 0

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0


class _Level:
    """One cache level. Sets are MRU-ordered lists of tags."""

    __slots__ = ("config", "stats", "sets", "set_mask", "line_bits",
                 "ways", "dirty")

    def __init__(self, config: CacheConfig) -> None:
        self.config = config
        self.stats = CacheStats(config.name)
        num_sets = config.num_sets
        self.sets: list[list[int]] = [[] for _ in range(num_sets)]
        self.set_mask = num_sets - 1
        self.line_bits = config.line_size.bit_length() - 1
        self.ways = config.ways
        self.dirty: set[int] = set()

    def access(self, line: int, write: bool) -> bool:
        """Look up one line; returns True on hit. Updates LRU and dirty."""
        stats = self.stats
        stats.accesses += 1
        set_idx = line & self.set_mask
        tag = line >> 1  # any injective function of the line id works
        ways = self.sets[set_idx]
        try:
            pos = ways.index(tag)
        except ValueError:
            stats.misses += 1
            ways.insert(0, tag)
            if len(ways) > self.ways:
                victim = ways.pop()
                stats.evictions += 1
                if (set_idx, victim) in self.dirty:
                    self.dirty.discard((set_idx, victim))
                    stats.writebacks += 1
            if write:
                self.dirty.add((set_idx, tag))
            return False
        if pos:
            ways.insert(0, ways.pop(pos))
        if write:
            self.dirty.add((set_idx, tag))
        return True


class CacheHierarchy:
    """L1I + L1D + unified L2 + LLC, non-inclusive."""

    def __init__(self, config: MachineConfig) -> None:
        self.config = config
        self.l1i = _Level(config.l1i)
        self.l1d = _Level(config.l1d)
        self.l2 = _Level(config.l2)
        self.l3 = _Level(config.l3)
        self.line_size = config.l1d.line_size
        self.line_bits = self.line_size.bit_length() - 1

    def data_access(self, line: int, write: bool) -> int:
        """Walk the data path for one line; return the service level."""
        if self.l1d.access(line, write):
            return SERVICE_L1
        if self.l2.access(line, write):
            return SERVICE_L2
        if self.l3.access(line, write):
            return SERVICE_L3
        return SERVICE_MEM

    def fetch_access(self, line: int) -> int:
        """Walk the instruction-fetch path for one line."""
        if self.l1i.access(line, False):
            return SERVICE_L1
        if self.l2.access(line, False):
            return SERVICE_L2
        if self.l3.access(line, False):
            return SERVICE_L3
        return SERVICE_MEM

    def stats(self) -> dict[str, CacheStats]:
        return {"L1I": self.l1i.stats, "L1D": self.l1d.stats,
                "L2": self.l2.stats, "L3": self.l3.stats}


@dataclass
class HierarchySimResult:
    """Per-instruction service levels plus per-level counters."""

    dlevel: np.ndarray   # int8, SERVICE_* per instruction (-1 if not mem)
    ilevel: np.ndarray   # int8, fetch service level (0 if same-line fetch)
    stats: dict[str, CacheStats] = field(default_factory=dict)
    mem_lines: int = 0   # lines transferred from memory (fills + writebacks)

    @property
    def llc_miss_rate(self) -> float:
        llc = self.stats["L3"]
        return llc.miss_rate


def simulate_cache_hierarchy_scalar(trace_arrays: dict[str, np.ndarray],
                                    config: MachineConfig,
                                    ) -> HierarchySimResult:
    """Reference engine: one Python-level ``access()`` call per line.

    Instruction fetch is simulated at line granularity: consecutive
    instructions on the same line share one fetch access, the way a fetch
    buffer would.
    """
    hierarchy = CacheHierarchy(config)
    n = len(trace_arrays["pc"])
    dlevel = np.full(n, SERVICE_NONE, dtype=np.int8)
    ilevel = np.zeros(n, dtype=np.int8)
    if n == 0:
        return HierarchySimResult(dlevel, ilevel, hierarchy.stats(), 0)

    line_bits = hierarchy.line_bits
    kinds = trace_arrays["kind"]
    addrs = trace_arrays["addr"]

    # --- data path -----------------------------------------------------
    mem_mask = (kinds == int(InstrKind.LOAD)) | \
               (kinds == int(InstrKind.STORE))
    mem_idx = np.nonzero(mem_mask)[0]
    if len(mem_idx):
        mem_lines = (addrs[mem_idx] >> line_bits).tolist()
        mem_writes = (kinds[mem_idx] == int(InstrKind.STORE)).tolist()
        access = hierarchy.data_access
        results = [access(line, write)
                   for line, write in zip(mem_lines, mem_writes)]
        dlevel[mem_idx] = results

    # --- instruction fetch path -----------------------------------------
    pc_lines = trace_arrays["pc"] >> line_bits
    change = np.empty(n, dtype=bool)
    change[0] = True
    np.not_equal(pc_lines[1:], pc_lines[:-1], out=change[1:])
    fetch_idx = np.nonzero(change)[0]
    fetch_lines = pc_lines[fetch_idx].tolist()
    fetch = hierarchy.fetch_access
    ilevel[fetch_idx] = [fetch(line) for line in fetch_lines]

    stats = hierarchy.stats()
    mem_lines_moved = (stats["L3"].misses + stats["L3"].writebacks)
    return HierarchySimResult(dlevel, ilevel, stats, mem_lines_moved)


# ----------------------------------------------------------------------
# Vectorized engine
# ----------------------------------------------------------------------

#: Environment override for the simulation engine: auto/vector/scalar.
SIM_BACKEND_ENV = "REPRO_SIM_BACKEND"

_BACKENDS = ("auto", "vector", "scalar")

#: ``auto`` falls back to a scalar walk over collapsed run heads when a
#: stream offers fewer concurrently-processable sets than this
#: (breakeven between the fixed NumPy cost per wave and ~1 us per
#: scalar access).
_MIN_PARALLELISM = 12


def _resolve_backend(backend: str | None) -> str:
    if backend is None:
        backend = os.environ.get(SIM_BACKEND_ENV) or "auto"
    if backend not in _BACKENDS:
        raise ReproError(
            f"unknown simulation backend {backend!r}; "
            f"choose from {_BACKENDS}")
    return backend


@dataclass
class _Runs:
    """Collapsed access runs scheduled into set-parallel waves.

    Arrays are in wave-major order: ``wave_sizes[k]`` consecutive
    entries form wave ``k``, and within a wave every run targets a
    distinct set.
    """

    set: np.ndarray
    tag: np.ndarray
    write: np.ndarray
    orig: np.ndarray     # original index of each run's head access
    wave_sizes: np.ndarray
    nruns: int

    @property
    def parallelism(self) -> float:
        """Mean number of distinct sets available per wave."""
        return self.nruns / max(len(self.wave_sizes), 1)


class _VecLevel:
    """One cache level processed in set-parallel waves.

    State lives in flat ``num_sets * ways`` arrays: the resident tag,
    a recency stamp (-1 = empty way; larger = more recently used), and
    a dirty bit per way. Because LRU order only compares stamps within
    one set, a single monotonically increasing wave clock serves every
    set. Exactly equivalent to :class:`_Level` fed the same stream.
    """

    __slots__ = ("config", "stats", "num_sets", "set_mask", "ways",
                 "adaptive", "_tags", "_stamps", "_dirty", "_clock",
                 "_mode", "_slists", "_sdirty")

    def __init__(self, config: CacheConfig, adaptive: bool) -> None:
        self.config = config
        self.stats = CacheStats(config.name)
        self.num_sets = config.num_sets
        self.set_mask = self.num_sets - 1
        self.ways = config.ways
        self.adaptive = adaptive
        self._tags: np.ndarray | None = None
        self._stamps: np.ndarray | None = None
        self._dirty: np.ndarray | None = None
        self._clock = 1
        #: "vector" or "scalar"; chosen on the first non-empty stream
        #: and sticky afterwards (the two representations differ).
        self._mode: str | None = None
        self._slists: list[list[int]] | None = None
        self._sdirty: set[tuple[int, int]] | None = None

    # -- preprocessing --------------------------------------------------

    def _prepare(self, lines: np.ndarray, writes: np.ndarray):
        """Sort into per-set runs and schedule them into waves."""
        # Stage 1: collapse temporally-consecutive same-line accesses
        # (interpreter stack traffic) before paying for the sort.
        n = len(lines)
        keep = np.empty(n, dtype=bool)
        keep[0] = True
        np.not_equal(lines[1:], lines[:-1], out=keep[1:])
        k_idx = np.nonzero(keep)[0]
        any_writes = bool(writes.any())
        if len(k_idx) != n:
            lines = lines[k_idx]
            if any_writes:
                writes = np.logical_or.reduceat(writes, k_idx)
        m = len(lines)
        # Stage 2: sort by set; collapse runs of consecutive same-tag
        # accesses within a set. Only each run's head touches LRU
        # state; the tail accesses are guaranteed hits that merely OR
        # their write bit into dirty. 16-bit sort keys take NumPy's
        # radix path, ~5x faster than the 32-bit merge sort.
        set_dtype = np.uint16 if self.num_sets <= 65536 else np.int32
        sets = (lines & self.set_mask).astype(set_dtype)
        order = np.argsort(sets, kind="stable")
        s_sets = sets[order]
        s_tags = lines[order] >> 1  # same injective tag fn as _Level
        head = np.empty(m, dtype=bool)
        head[0] = True
        np.logical_or(s_sets[1:] != s_sets[:-1],
                      s_tags[1:] != s_tags[:-1], out=head[1:])
        run_start = np.nonzero(head)[0]
        if any_writes:
            run_write = np.logical_or.reduceat(writes[order], run_start)
        else:
            run_write = np.zeros(len(run_start), dtype=bool)
        run_set = s_sets[run_start]
        run_tag = s_tags[run_start]
        run_orig = k_idx[order[run_start]]
        nruns = len(run_start)
        # Wave id = occurrence rank of the run within its set.
        idx = np.arange(nruns)
        set_head = np.empty(nruns, dtype=bool)
        set_head[0] = True
        np.not_equal(run_set[1:], run_set[:-1], out=set_head[1:])
        starts = idx[set_head]
        counts = np.diff(np.append(starts, nruns))
        rank = (idx - np.repeat(starts, counts)).astype(np.int32)
        worder = np.argsort(rank, kind="stable")
        wave_sizes = np.bincount(rank)
        return _Runs(run_set[worder], run_tag[worder], run_write[worder],
                     run_orig[worder], wave_sizes, nruns)

    # -- engines --------------------------------------------------------

    def _run_scalar(self, rsets: np.ndarray, rtags: np.ndarray,
                    rwrites: np.ndarray) -> np.ndarray:
        """MRU-list walk over run heads; same algorithm as _Level."""
        if self._slists is None:
            self._slists = [[] for _ in range(self.num_sets)]
            self._sdirty = set()
        slists, dirty, capacity = self._slists, self._sdirty, self.ways
        misses = evictions = writebacks = 0
        out = np.empty(len(rsets), dtype=bool)
        i = 0
        for set_idx, tag, write in zip(rsets.tolist(), rtags.tolist(),
                                       rwrites.tolist()):
            ways = slists[set_idx]
            try:
                pos = ways.index(tag)
            except ValueError:
                misses += 1
                ways.insert(0, tag)
                if len(ways) > capacity:
                    victim = ways.pop()
                    evictions += 1
                    key = (set_idx, victim)
                    if key in dirty:
                        dirty.discard(key)
                        writebacks += 1
                if write:
                    dirty.add((set_idx, tag))
                out[i] = False
            else:
                if pos:
                    ways.insert(0, ways.pop(pos))
                if write:
                    dirty.add((set_idx, tag))
                out[i] = True
            i += 1
        stats = self.stats
        stats.misses += misses
        stats.evictions += evictions
        stats.writebacks += writebacks
        return out

    def _run_waves(self, w_set, w_tag, w_write, wave_sizes) -> np.ndarray:
        ways = self.ways
        if self._tags is None:
            size = self.num_sets * ways
            self._tags = np.full(size, -1, dtype=np.int64)
            self._stamps = np.full(size, -1, dtype=np.int64)
            self._dirty = np.zeros(size, dtype=bool)
        tagf, stampf, dirtyf = self._tags, self._stamps, self._dirty
        arange_ways = np.arange(ways)
        hits_out = np.empty(len(w_set), dtype=bool)
        misses = evictions = writebacks = 0
        clock = self._clock
        pos = 0
        for size in wave_sizes.tolist():
            end = pos + size
            st = w_set[pos:end]
            tg = w_tag[pos:end]
            wr = w_write[pos:end]
            base = st.astype(np.int64) * ways
            rows = base[:, None] + arange_ways
            row_tags = tagf.take(rows)
            row_stamps = stampf.take(rows)
            eq = row_tags == tg[:, None]
            eq &= row_stamps >= 0
            hit = eq.any(axis=1)
            way = np.where(hit, eq.argmax(axis=1),
                           row_stamps.argmin(axis=1))
            flat = base + way
            victim_stamp = stampf.take(flat)
            old_dirty = dirtyf.take(flat)
            evict = ~hit
            evict &= victim_stamp >= 0
            wb = evict & old_dirty
            misses += size - int(np.count_nonzero(hit))
            evictions += int(np.count_nonzero(evict))
            writebacks += int(np.count_nonzero(wb))
            tagf[flat] = tg
            stampf[flat] = clock
            dirtyf[flat] = (hit & old_dirty) | wr
            hits_out[pos:end] = hit
            pos = end
            clock += 1
        self._clock = clock
        stats = self.stats
        stats.misses += misses
        stats.evictions += evictions
        stats.writebacks += writebacks
        return hits_out

    def access_many(self, lines: np.ndarray, writes: np.ndarray,
                    ) -> np.ndarray:
        """Process a stream of line accesses; returns per-access hits."""
        n = len(lines)
        if n == 0:
            return np.zeros(0, dtype=bool)
        runs = self._prepare(lines, writes)
        self.stats.accesses += n
        if self._mode is None:
            low = (self.num_sets < _MIN_PARALLELISM
                   or runs.parallelism < _MIN_PARALLELISM)
            self._mode = "scalar" if self.adaptive and low else "vector"
        if self._mode == "scalar":
            # Hot-set streams offer too few concurrent sets for waves to
            # pay off; walk just the collapsed run heads scalar instead.
            torder = np.argsort(runs.orig)
            head_idx = runs.orig[torder]
            head_hits = self._run_scalar(runs.set[torder],
                                         runs.tag[torder],
                                         runs.write[torder])
        else:
            head_idx = runs.orig
            head_hits = self._run_waves(runs.set, runs.tag, runs.write,
                                        runs.wave_sizes)
        hits = np.ones(n, dtype=bool)  # collapsed tail accesses all hit
        hits[head_idx] = head_hits
        return hits


def simulate_cache_hierarchy_vectorized(
        trace_arrays: dict[str, np.ndarray], config: MachineConfig,
        adaptive: bool = True) -> HierarchySimResult:
    """Batched engine; bit-identical outputs to the scalar reference.

    The phase order matches the scalar engine exactly: the whole data
    path is simulated first, then the instruction-fetch path, so the
    shared L2/L3 levels observe the same access sequence.
    """
    n = len(trace_arrays["pc"])
    dlevel = np.full(n, SERVICE_NONE, dtype=np.int8)
    ilevel = np.zeros(n, dtype=np.int8)
    l1i = _VecLevel(config.l1i, adaptive)
    l1d = _VecLevel(config.l1d, adaptive)
    l2 = _VecLevel(config.l2, adaptive)
    l3 = _VecLevel(config.l3, adaptive)
    stats = {"L1I": l1i.stats, "L1D": l1d.stats,
             "L2": l2.stats, "L3": l3.stats}
    if n == 0:
        return HierarchySimResult(dlevel, ilevel, stats, 0)
    line_bits = config.l1d.line_size.bit_length() - 1
    kinds = trace_arrays["kind"]
    addrs = trace_arrays["addr"]

    def walk(first: _VecLevel, lines: np.ndarray, writes: np.ndarray,
             out: np.ndarray, out_idx: np.ndarray) -> None:
        """Send a stream through ``first`` -> L2 -> L3, filling ``out``."""
        levels = ((first, SERVICE_L1), (l2, SERVICE_L2), (l3, SERVICE_L3))
        idx = out_idx
        for level, service in levels:
            hits = level.access_many(lines, writes)
            out[idx[hits]] = service
            miss = ~hits
            idx = idx[miss]
            lines = lines[miss]
            writes = writes[miss]
        out[idx] = SERVICE_MEM

    # --- data path -----------------------------------------------------
    mem_mask = (kinds == int(InstrKind.LOAD)) | \
               (kinds == int(InstrKind.STORE))
    mem_idx = np.nonzero(mem_mask)[0]
    if len(mem_idx):
        mem_lines = addrs[mem_idx] >> line_bits
        mem_writes = kinds[mem_idx] == int(InstrKind.STORE)
        walk(l1d, mem_lines, mem_writes, dlevel, mem_idx)

    # --- instruction fetch path ----------------------------------------
    pc_lines = trace_arrays["pc"] >> line_bits
    change = np.empty(n, dtype=bool)
    change[0] = True
    np.not_equal(pc_lines[1:], pc_lines[:-1], out=change[1:])
    fetch_idx = np.nonzero(change)[0]
    walk(l1i, pc_lines[fetch_idx], np.zeros(len(fetch_idx), dtype=bool),
         ilevel, fetch_idx)

    mem_lines_moved = stats["L3"].misses + stats["L3"].writebacks
    return HierarchySimResult(dlevel, ilevel, stats, mem_lines_moved)


def simulate_cache_hierarchy(trace_arrays: dict[str, np.ndarray],
                             config: MachineConfig,
                             backend: str | None = None,
                             ) -> HierarchySimResult:
    """Run the whole trace through a fresh cache hierarchy.

    ``backend`` picks the engine (``auto``/``vector``/``scalar``;
    default: the ``REPRO_SIM_BACKEND`` environment variable, else
    ``auto``). All engines return bit-identical results; they differ
    only in speed.
    """
    backend = _resolve_backend(backend)
    if backend == "scalar":
        return simulate_cache_hierarchy_scalar(trace_arrays, config)
    return simulate_cache_hierarchy_vectorized(
        trace_arrays, config, adaptive=backend == "auto")
