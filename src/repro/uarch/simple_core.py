"""Simple core timing model (Section IV-B.2).

"In the simple core model, instruction latency is only affected by misses
in the instruction and data caches. Otherwise, an instruction takes a
single cycle." Because every cycle belongs to exactly one instruction,
cycles can be attributed to overhead categories exactly — this model backs
all of the breakdown figures (Figs 4, 5, 6, 11, 13).
"""

from __future__ import annotations

import numpy as np

from ..config import MachineConfig
from .cache import SERVICE_L1, SERVICE_MEM


def _service_penalties(config: MachineConfig) -> np.ndarray:
    """Extra cycles per service level beyond the single base cycle.

    Index by service level + 1 so that SERVICE_NONE (-1) maps to zero.
    """
    return np.array([
        0.0,                                         # not a memory access
        0.0,                                         # L1 hit: the 1 cycle
        float(config.l2.latency),                    # L2 hit
        float(config.l2.latency + config.l3.latency),  # LLC hit
        float(config.l2.latency + config.l3.latency
              + config.memory.latency),              # memory
    ])


def simple_core_cycles(dlevel: np.ndarray, ilevel: np.ndarray,
                       config: MachineConfig) -> np.ndarray:
    """Per-instruction cycle counts under the simple core model."""
    penalties = _service_penalties(config)
    cycles = np.ones(len(dlevel), dtype=np.float64)
    cycles += penalties[dlevel.astype(np.int64) + 1]
    cycles += penalties[ilevel.astype(np.int64) + 1]
    return cycles


def attribute_cycles(categories: np.ndarray, cycles: np.ndarray,
                     num_categories: int = 32) -> np.ndarray:
    """Sum per-instruction cycles into per-category buckets."""
    if len(categories) == 0:
        return np.zeros(num_categories, dtype=np.float64)
    return np.bincount(categories.astype(np.int64), weights=cycles,
                       minlength=num_categories)


def total_simple_cycles(dlevel: np.ndarray, ilevel: np.ndarray,
                        config: MachineConfig) -> float:
    """Total simple-core cycle count for a trace."""
    if len(dlevel) == 0:
        return 0.0
    return float(simple_core_cycles(dlevel, ilevel, config).sum())


__all__ = [
    "simple_core_cycles", "attribute_cycles", "total_simple_cycles",
    "SERVICE_L1", "SERVICE_MEM",
]
