"""Approximate out-of-order core model for the Figure 7-9 sweeps.

A single in-order pass computes, for every instruction, the earliest cycle
it can issue and finish under five constraints:

1. **Issue bandwidth** — the front end delivers ``issue_width``
   instructions per cycle.
2. **Register dependences** — an instruction cannot start before the
   producer recorded in the trace's ``dep`` column has finished. This is
   what gives interpreters their characteristically low ILP: the dispatch
   loop is one long serial chain.
3. **ROB window** — instruction *i* cannot issue before instruction
   *i - rob_entries* has finished (retirement frees the slot).
4. **Branch mispredictions** — a mispredicted branch restarts the front
   end ``mispredict_penalty`` cycles after it resolves.
5. **Memory bandwidth** — off-chip line transfers (fills and writebacks)
   occupy the bus under a token-bucket envelope; when the envelope is
   exhausted, memory-serviced accesses are delayed.
6. **Outstanding misses (MSHRs)** — at most ``_MSHRS`` off-chip misses
   may be in flight; a streaming miss sequence is therefore throttled to
   ``MSHRS / memory_latency`` lines per cycle, which is what makes
   memory *latency* matter even for store streams (Figure 7e).

Loads see the full load-to-use latency of whichever cache level serviced
them. Stores retire through a write buffer (latency 1) but their fills
occupy an MSHR for the full memory latency and consume bus bandwidth.
Independent misses overlap up to the MSHR limit — memory-level
parallelism falls out of the dependence model rather than being a
parameter.
"""

from __future__ import annotations

import numpy as np

from ..config import MachineConfig
from ..host.isa import KIND_LATENCY, InstrKind

_RING = 4096  # must exceed both the ROB size and the largest dep distance

#: Maximum off-chip misses in flight (miss status holding registers).
_MSHRS = 10

_LOAD = int(InstrKind.LOAD)
_STORE = int(InstrKind.STORE)


def _load_latencies(config: MachineConfig) -> list[float]:
    """Load-to-use latency per service level (index: SERVICE_* value)."""
    l1 = float(config.l1d.latency)
    l2 = l1 + config.l2.latency
    l3 = l2 + config.l3.latency
    mem = l3 + config.memory.latency
    return [l1, l2, l3, mem]


def _fetch_penalties(config: MachineConfig) -> list[float]:
    """Front-end bubble per instruction-fetch service level."""
    return [0.0,
            float(config.l2.latency),
            float(config.l2.latency + config.l3.latency),
            float(config.l2.latency + config.l3.latency
                  + config.memory.latency)]


def ooo_cycles(trace_arrays: dict[str, np.ndarray], dlevel: np.ndarray,
               ilevel: np.ndarray, mispredicted: np.ndarray,
               config: MachineConfig) -> float:
    """Total cycles to execute the trace on the approximate OOO core."""
    n = len(trace_arrays["pc"])
    if n == 0:
        return 0.0

    kinds = trace_arrays["kind"].tolist()
    deps = trace_arrays["dep"].tolist()
    dlev = dlevel.tolist()
    ilev = ilevel.tolist()
    misp = mispredicted.tolist()

    issue_interval = 1.0 / config.core.issue_width
    # Fetch bandwidth: instructions are ~4 bytes, so fetch_bytes/4 per cycle.
    fetch_interval = 4.0 / config.core.fetch_bytes
    front_interval = max(issue_interval, fetch_interval)
    rob = config.core.rob_entries
    penalty = float(config.branch.mispredict_penalty)
    load_lat = _load_latencies(config)
    fetch_pen = _fetch_penalties(config)
    kind_lat = [float(KIND_LATENCY[InstrKind(k)]) for k in range(10)]
    line_size = config.l1d.line_size
    bytes_per_cycle = config.memory.bytes_per_cycle

    fin = [0.0] * _RING
    front = 0.0           # next front-end delivery time
    mem_bytes = 0.0       # cumulative off-chip traffic
    mem_latency = float(config.memory.latency)
    miss_ring = [0.0] * _MSHRS
    miss_count = 0
    last_finish = 0.0

    for i in range(n):
        start = front
        front += front_interval

        level = ilev[i]
        if level > 0:
            bubble = fetch_pen[level]
            front += bubble
            start += bubble
            mem_bytes += line_size if level == 3 else 0.0

        dep = deps[i]
        if dep > 0 and dep <= i and dep < _RING:
            producer = fin[(i - dep) % _RING]
            if producer > start:
                start = producer
        if i >= rob:
            oldest = fin[(i - rob) % _RING]
            if oldest > start:
                start = oldest

        kind = kinds[i]
        if kind == _LOAD:
            service = dlev[i]
            if service == 3:
                mem_bytes += line_size
                bus_ready = mem_bytes / bytes_per_cycle - mem_latency
                if bus_ready > start:
                    start = bus_ready
                mshr_free = miss_ring[miss_count % _MSHRS]
                if mshr_free > start:
                    start = mshr_free
                miss_ring[miss_count % _MSHRS] = start + mem_latency
                miss_count += 1
            latency = load_lat[service] if service >= 0 else kind_lat[kind]
        elif kind == _STORE:
            if dlev[i] == 3:
                mem_bytes += line_size
                bus_ready = mem_bytes / bytes_per_cycle - mem_latency
                if bus_ready > start:
                    start = bus_ready
                mshr_free = miss_ring[miss_count % _MSHRS]
                if mshr_free > start:
                    start = mshr_free
                # The store itself retires via the write buffer, but its
                # fill occupies an MSHR for the full memory latency.
                miss_ring[miss_count % _MSHRS] = start + mem_latency
                miss_count += 1
            latency = 1.0
        else:
            latency = kind_lat[kind]

        finish = start + latency
        fin[i % _RING] = finish
        if finish > last_finish:
            last_finish = finish

        if misp[i]:
            restart = finish + penalty
            if restart > front:
                front = restart

    return max(last_finish, front)
