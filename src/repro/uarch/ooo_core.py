"""Approximate out-of-order core model for the Figure 7-9 sweeps.

A single in-order pass computes, for every instruction, the earliest cycle
it can issue and finish under five constraints:

1. **Issue bandwidth** — the front end delivers ``issue_width``
   instructions per cycle.
2. **Register dependences** — an instruction cannot start before the
   producer recorded in the trace's ``dep`` column has finished. This is
   what gives interpreters their characteristically low ILP: the dispatch
   loop is one long serial chain.
3. **ROB window** — instruction *i* cannot issue before instruction
   *i - rob_entries* has finished (retirement frees the slot).
4. **Branch mispredictions** — a mispredicted branch restarts the front
   end ``mispredict_penalty`` cycles after it resolves.
5. **Memory bandwidth** — off-chip line transfers (fills and writebacks)
   occupy the bus under a token-bucket envelope; when the envelope is
   exhausted, memory-serviced accesses are delayed.
6. **Outstanding misses (MSHRs)** — at most ``MSHRS`` off-chip misses
   may be in flight; a streaming miss sequence is therefore throttled to
   ``MSHRS / memory_latency`` lines per cycle, which is what makes
   memory *latency* matter even for store streams (Figure 7e).

Loads see the full load-to-use latency of whichever cache level serviced
them. Stores retire through a write buffer (latency 1) but their fills
occupy an MSHR for the full memory latency and consume bus bandwidth.
Independent misses overlap up to the MSHR limit — memory-level
parallelism falls out of the dependence model rather than being a
parameter.

Two interchangeable engines implement the model:

* the **scalar** engine below walks the trace one instruction at a time
  (the reference), and
* the **vectorized** engine in :mod:`~repro.uarch.ooo_vector` processes
  the trace in blocks, solving each block's timing recurrences by
  fixed-point relaxation built from exact prefix scans, and can batch a
  whole config sweep through one walk of the trace
  (:func:`ooo_cycles_many`).

Both engines do all time arithmetic in integer **ticks** (``TICKS`` per
cycle, a power of two), so every sum and max is exact and the two
engines are bit-identical for any block size — the same discipline the
memory-side engines use, extended to the core model's fractional issue
intervals. ``REPRO_SIM_BACKEND=auto|vector|scalar`` (or the ``backend``
argument) selects the engine, exactly as for the cache and branch
simulations.
"""

from __future__ import annotations

import numpy as np

from ..config import MachineConfig
from ..host.isa import KIND_LATENCY, InstrKind

#: Integer time resolution: ticks per clock cycle (power of two, so
#: ``ticks / TICKS`` is an exact float division). 1/65536 of a cycle is
#: far below any physical effect the model resolves.
TICK_BITS = 16
TICKS = 1 << TICK_BITS

#: Maximum off-chip misses in flight (miss status holding registers).
MSHRS = 10
_MSHRS = MSHRS  # backwards-compatible alias

#: Floor for the scalar engine's finish ring. The ring grows past this
#: whenever the ROB or the largest dependence distance needs it (the
#: seed engine silently *ignored* deps >= 4096 and corrupted the ROB
#: constraint for rob_entries >= 4096).
_RING = 4096

_LOAD = int(InstrKind.LOAD)
_STORE = int(InstrKind.STORE)

#: Execution latency in ticks per instruction kind, derived from the ISA
#: table so a new :class:`InstrKind` member can never index out of range.
KIND_LATENCY_TICKS = np.zeros(max(int(k) for k in InstrKind) + 1,
                              dtype=np.int64)
for _kind in InstrKind:
    KIND_LATENCY_TICKS[int(_kind)] = KIND_LATENCY[_kind] * TICKS
del _kind


def _load_latencies(config: MachineConfig) -> list[int]:
    """Load-to-use latency in ticks per service level (SERVICE_* index)."""
    l1 = config.l1d.latency
    l2 = l1 + config.l2.latency
    l3 = l2 + config.l3.latency
    mem = l3 + config.memory.latency
    return [l1 * TICKS, l2 * TICKS, l3 * TICKS, mem * TICKS]


def _fetch_penalties(config: MachineConfig) -> list[int]:
    """Front-end bubble in ticks per instruction-fetch service level."""
    l2 = config.l2.latency
    l3 = l2 + config.l3.latency
    mem = l3 + config.memory.latency
    return [0, l2 * TICKS, l3 * TICKS, mem * TICKS]


def front_interval_ticks(config: MachineConfig) -> int:
    """Ticks between front-end deliveries (issue- or fetch-limited)."""
    issue = round(TICKS / config.core.issue_width)
    # Instructions are ~4 bytes, so the fetch side delivers
    # fetch_bytes / 4 instructions per cycle.
    fetch = round(4 * TICKS / config.core.fetch_bytes)
    return max(1, issue, fetch)


def ticks_per_byte(config: MachineConfig) -> int:
    """Bus occupancy in ticks per byte of off-chip traffic."""
    return max(1, round(TICKS / config.memory.bytes_per_cycle))


def ring_size(rob: int, dep: np.ndarray) -> int:
    """Finish-ring size covering both the ROB and every dependence.

    The ring must hold at least ``max(rob, max dep distance)`` finished
    instructions or lookups would read slots that were already
    overwritten (or, worse, not yet written). ``dep`` is the trace's dep
    column; distances beyond the instruction index can never be
    dereferenced, so they do not force growth.
    """
    n = len(dep)
    need = min(rob, max(n - 1, 0))
    if n:
        d = np.asarray(dep, dtype=np.int64)
        valid = (d > 0) & (d <= np.arange(n, dtype=np.int64))
        if valid.any():
            need = max(need, int(d[valid].max()))
    size = _RING
    while size <= need:
        size <<= 1
    return size


def ooo_cycles_scalar(trace_arrays: dict[str, np.ndarray],
                      dlevel: np.ndarray, ilevel: np.ndarray,
                      mispredicted: np.ndarray,
                      config: MachineConfig) -> float:
    """Total cycles on the approximate OOO core (reference engine)."""
    n = len(trace_arrays["pc"])
    if n == 0:
        return 0.0

    kinds = trace_arrays["kind"].tolist()
    deps = trace_arrays["dep"].tolist()
    dlev = dlevel.tolist()
    ilev = ilevel.tolist()
    misp = mispredicted.tolist()

    front_interval = front_interval_ticks(config)
    rob = config.core.rob_entries
    penalty = config.branch.mispredict_penalty * TICKS
    load_lat = _load_latencies(config)
    fetch_pen = _fetch_penalties(config)
    kind_lat = KIND_LATENCY_TICKS.tolist()
    line_size = config.l1d.line_size
    tpb = ticks_per_byte(config)
    mem_latency = config.memory.latency * TICKS

    ring = ring_size(rob, trace_arrays["dep"])
    fin = [0] * ring
    front = 0             # next front-end delivery time (ticks)
    mem_bytes = 0         # cumulative off-chip traffic (bytes)
    miss_ring = [0] * MSHRS
    miss_count = 0
    last_finish = 0

    for i in range(n):
        start = front
        front += front_interval

        level = ilev[i]
        if level > 0:
            bubble = fetch_pen[level]
            front += bubble
            start += bubble
            if level == 3:
                mem_bytes += line_size

        dep = deps[i]
        if 0 < dep <= i:
            producer = fin[(i - dep) % ring]
            if producer > start:
                start = producer
        if i >= rob:
            oldest = fin[(i - rob) % ring]
            if oldest > start:
                start = oldest

        kind = kinds[i]
        if kind == _LOAD:
            service = dlev[i]
            if service == 3:
                mem_bytes += line_size
                bus_ready = mem_bytes * tpb - mem_latency
                if bus_ready > start:
                    start = bus_ready
                mshr_free = miss_ring[miss_count % MSHRS]
                if mshr_free > start:
                    start = mshr_free
                miss_ring[miss_count % MSHRS] = start + mem_latency
                miss_count += 1
            latency = load_lat[service] if service >= 0 else kind_lat[kind]
        elif kind == _STORE:
            if dlev[i] == 3:
                mem_bytes += line_size
                bus_ready = mem_bytes * tpb - mem_latency
                if bus_ready > start:
                    start = bus_ready
                mshr_free = miss_ring[miss_count % MSHRS]
                if mshr_free > start:
                    start = mshr_free
                # The store itself retires via the write buffer, but its
                # fill occupies an MSHR for the full memory latency.
                miss_ring[miss_count % MSHRS] = start + mem_latency
                miss_count += 1
            latency = TICKS
        else:
            latency = kind_lat[kind]

        finish = start + latency
        fin[i % ring] = finish
        if finish > last_finish:
            last_finish = finish

        if misp[i]:
            restart = finish + penalty
            if restart > front:
                front = restart

    return max(last_finish, front) / TICKS


#: Below this many instructions ``auto`` prefers the scalar walk — the
#: vectorized engine's fixed per-call setup dominates on tiny traces.
_AUTO_MIN_INSTRUCTIONS = 2048


def ooo_cycles(trace_arrays: dict[str, np.ndarray], dlevel: np.ndarray,
               ilevel: np.ndarray, mispredicted: np.ndarray,
               config: MachineConfig, backend: str | None = None) -> float:
    """Total cycles to execute the trace on the approximate OOO core.

    ``backend`` selects the engine (``auto``/``vector``/``scalar``); by
    default the ``REPRO_SIM_BACKEND`` environment variable decides,
    falling back to ``auto``. All engines are bit-identical.
    """
    from .cache import _resolve_backend
    resolved = _resolve_backend(backend)
    n = len(trace_arrays["pc"])
    if resolved == "scalar" or (resolved == "auto"
                                and n < _AUTO_MIN_INSTRUCTIONS):
        return ooo_cycles_scalar(trace_arrays, dlevel, ilevel,
                                 mispredicted, config)
    from .ooo_vector import ooo_cycles_many_vector
    return ooo_cycles_many_vector(trace_arrays, dlevel, ilevel,
                                  mispredicted, [config])[0]


def ooo_cycles_many(trace_arrays: dict[str, np.ndarray], states,
                    configs, backend: str | None = None) -> list[float]:
    """OOO cycles for many configs in (at most) one walk of the trace.

    ``states`` and ``configs`` are parallel sequences; each state is a
    :class:`~repro.uarch.system.MemorySideState` (or anything with
    ``dlevel``/``ilevel``/``mispredicted`` arrays) matching its config's
    memory-side geometry. Configs that share a state object — a latency
    or issue-width sweep over one trace — are evaluated together by the
    batched engine, which walks the trace once with a config axis
    instead of once per point. Results come back in input order and are
    bit-identical to per-config :func:`ooo_cycles` calls for every
    backend.
    """
    if len(states) != len(configs):
        raise ValueError("states and configs must be parallel sequences")
    from .cache import _resolve_backend
    resolved = _resolve_backend(backend)
    n = len(trace_arrays["pc"])
    out: list[float | None] = [None] * len(configs)
    if resolved == "scalar" or (resolved == "auto"
                                and n < _AUTO_MIN_INSTRUCTIONS):
        for i, (state, config) in enumerate(zip(states, configs)):
            out[i] = ooo_cycles_scalar(trace_arrays, state.dlevel,
                                       state.ilevel, state.mispredicted,
                                       config)
        return out
    from .ooo_vector import ooo_cycles_many_vector
    groups: dict[int, tuple] = {}
    for i, (state, config) in enumerate(zip(states, configs)):
        positions, _, cfgs = groups.setdefault(
            id(state), ([], state, []))
        positions.append(i)
        cfgs.append(config)
    for positions, state, cfgs in groups.values():
        cycles = ooo_cycles_many_vector(trace_arrays, state.dlevel,
                                        state.ilevel, state.mispredicted,
                                        cfgs)
        for pos, value in zip(positions, cycles):
            out[pos] = value
    return out
