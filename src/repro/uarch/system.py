"""Whole-system simulation: trace in, cycles and statistics out.

:class:`SimulatedSystem` wires the cache hierarchy, branch predictor, DRAM
model, and a core model together. The memory-side state (cache service
levels, branch mispredict flags) is computed once per (trace, machine
config) and can be reused across core-model parameters — the experiment
sweeps exploit this so that, say, an issue-width sweep does not re-run the
cache simulation.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..config import MachineConfig, skylake_config
from ..host.trace import InstructionTrace
from ..telemetry import TELEMETRY
from .branch import BranchStats, simulate_branches
from .cache import CacheStats, simulate_cache_hierarchy
from .ooo_core import ooo_cycles, ooo_cycles_many
from .simple_core import attribute_cycles, simple_core_cycles


@dataclass
class MemorySideState:
    """Cache and branch simulation outputs for one (trace, config) pair."""

    dlevel: np.ndarray
    ilevel: np.ndarray
    cache_stats: dict[str, CacheStats]
    mem_lines: int
    mispredicted: np.ndarray
    branch_stats: BranchStats

    @property
    def llc_miss_rate(self) -> float:
        return self.cache_stats["L3"].miss_rate


@dataclass
class SimResult:
    """Timing result for one trace on one machine configuration."""

    instructions: int
    cycles: float
    core_model: str
    cache_stats: dict[str, CacheStats]
    branch_stats: BranchStats
    #: Cycles per category (simple core only; index = OverheadCategory).
    category_cycles: np.ndarray | None = None
    #: Per-instruction cycles (simple core only).
    per_instruction: np.ndarray | None = field(default=None, repr=False)

    @property
    def cpi(self) -> float:
        return self.cycles / self.instructions if self.instructions else 0.0

    @property
    def llc_miss_rate(self) -> float:
        return self.cache_stats["L3"].miss_rate


class SimulatedSystem:
    """The paper's Zsim-analog: Table I machine by default."""

    def __init__(self, config: MachineConfig | None = None) -> None:
        self.config = config if config is not None else skylake_config()

    @staticmethod
    def _note_throughput(stage: str, instructions: int,
                         elapsed: float) -> None:
        """Gauge: simulated instructions per host second, per stage."""
        if elapsed > 0:
            TELEMETRY.metrics.gauge(
                "sim.instructions_per_second",
                stage=stage).set(instructions / elapsed)

    def memory_side(self, trace: InstructionTrace,
                    backend: str | None = None) -> MemorySideState:
        """Run cache hierarchy and branch predictor over the trace.

        ``backend`` selects the simulation engine (``auto``/``vector``/
        ``scalar``); by default the ``REPRO_SIM_BACKEND`` environment
        variable decides, falling back to ``auto``.
        """
        start = time.perf_counter() if TELEMETRY.enabled else 0.0
        arrays = trace.arrays()
        cache_result = simulate_cache_hierarchy(arrays, self.config,
                                                backend=backend)
        mispredicted, branch_stats = simulate_branches(
            arrays, self.config.branch, backend=backend)
        if TELEMETRY.enabled:
            self._note_throughput("memory_side", len(trace),
                                  time.perf_counter() - start)
        return MemorySideState(
            dlevel=cache_result.dlevel,
            ilevel=cache_result.ilevel,
            cache_stats=cache_result.stats,
            mem_lines=cache_result.mem_lines,
            mispredicted=mispredicted,
            branch_stats=branch_stats)

    def run(self, trace: InstructionTrace, core: str = "ooo",
            state: MemorySideState | None = None,
            backend: str | None = None) -> SimResult:
        """Simulate the trace end to end.

        ``core`` selects the timing model: ``"simple"`` for per-category
        attribution (Section IV-B.2) or ``"ooo"`` for the sweeps.
        A precomputed ``state`` may be passed to reuse memory-side
        results. ``backend`` selects the core engine
        (``auto``/``vector``/``scalar``; default ``REPRO_SIM_BACKEND``) —
        all backends are bit-identical.
        """
        arrays = trace.arrays()
        if state is None:
            state = self.memory_side(trace)
        start = time.perf_counter() if TELEMETRY.enabled else 0.0
        if core == "simple":
            per_instruction = simple_core_cycles(
                state.dlevel, state.ilevel, self.config)
            category_cycles = attribute_cycles(
                arrays["category"], per_instruction)
            cycles = float(per_instruction.sum())
            if TELEMETRY.enabled:
                self._note_throughput("core.simple", len(trace),
                                      time.perf_counter() - start)
            return SimResult(
                instructions=len(trace), cycles=cycles, core_model="simple",
                cache_stats=state.cache_stats,
                branch_stats=state.branch_stats,
                category_cycles=category_cycles,
                per_instruction=per_instruction)
        if core == "ooo":
            cycles = ooo_cycles(arrays, state.dlevel, state.ilevel,
                                state.mispredicted, self.config,
                                backend=backend)
            if TELEMETRY.enabled:
                self._note_throughput("core.ooo", len(trace),
                                      time.perf_counter() - start)
            return SimResult(
                instructions=len(trace), cycles=cycles, core_model="ooo",
                cache_stats=state.cache_stats,
                branch_stats=state.branch_stats)
        raise ValueError(f"unknown core model: {core!r}")

    @staticmethod
    def run_many_configs(trace: InstructionTrace, configs,
                         states, core: str = "ooo",
                         backend: str | None = None) -> list[SimResult]:
        """Simulate one trace under many configs in batched walks.

        ``configs`` and ``states`` are parallel sequences; configs that
        share a :class:`MemorySideState` *object* (a latency/bandwidth/
        issue-width axis over one trace) are evaluated together by the
        batched OOO engine, so the trace is walked once per distinct
        state instead of once per config. Results are bit-identical to
        per-config :meth:`run` calls, in input order.
        """
        if len(states) != len(configs):
            raise ValueError("states and configs must be parallel "
                             "sequences")
        if core != "ooo":
            return [SimulatedSystem(config).run(trace, core=core,
                                                state=state,
                                                backend=backend)
                    for config, state in zip(configs, states)]
        arrays = trace.arrays()
        start = time.perf_counter() if TELEMETRY.enabled else 0.0
        cycles = ooo_cycles_many(arrays, states, configs,
                                 backend=backend)
        if TELEMETRY.enabled and cycles:
            SimulatedSystem._note_throughput(
                "core.ooo", len(trace) * len(configs),
                time.perf_counter() - start)
        return [SimResult(instructions=len(trace), cycles=c,
                          core_model="ooo",
                          cache_stats=state.cache_stats,
                          branch_stats=state.branch_stats)
                for c, state in zip(cycles, states)]
