"""Two-level branch predictor with 2-bit counters, plus a BTB.

Table I: "2-level 2-bit BP with 2048x18b L1, 16384x2b L2". The first-level
table holds per-address branch history registers; the second level holds
2-bit saturating counters indexed by the history XORed with the branch PC.
Scaling both tables is the Figure 7(b) sweep axis.

Indirect calls and jumps are predicted by a direct-mapped branch target
buffer; returns are assumed to be predicted perfectly by a return address
stack, and unconditional direct branches/calls are always correct. This
separation lets the analysis quantify the *indirect* share of the C
function call overhead the way Section IV-C.1 does.

Like the cache model, :func:`simulate_branches` is backed by two
interchangeable engines selected via the ``backend`` argument or the
``REPRO_SIM_BACKEND`` environment variable: a scalar reference that
feeds one branch at a time through :class:`BranchPredictor`, and a
vectorized engine that computes per-branch histories with grouped
window sums and resolves the saturating counters with a segmented
prefix scan of clamped-add functions (saturation composes: the
composition of ``c -> clip(c + a, lo, hi)`` maps is again such a map).
Both produce bit-identical mispredict flags and statistics.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import BranchPredictorConfig
from ..host.isa import FLAG_COND, FLAG_INDIRECT, FLAG_TAKEN, InstrKind


@dataclass
class BranchStats:
    """Outcome counters for one simulated trace."""

    conditional: int = 0
    conditional_mispredicts: int = 0
    indirect: int = 0
    indirect_mispredicts: int = 0

    @property
    def conditional_accuracy(self) -> float:
        if not self.conditional:
            return 1.0
        return 1.0 - self.conditional_mispredicts / self.conditional

    @property
    def indirect_accuracy(self) -> float:
        if not self.indirect:
            return 1.0
        return 1.0 - self.indirect_mispredicts / self.indirect

    @property
    def total_mispredicts(self) -> int:
        return self.conditional_mispredicts + self.indirect_mispredicts


class BranchPredictor:
    """Stateful predictor; feed it branches in program order."""

    def __init__(self, config: BranchPredictorConfig) -> None:
        self.config = config
        self._l1_mask = _pow2_mask(config.scaled_l1_entries)
        self._l2_mask = _pow2_mask(config.scaled_l2_entries)
        self._btb_mask = _pow2_mask(config.scaled_btb_entries)
        self._history = [0] * (self._l1_mask + 1)
        # 2-bit counters, initialized weakly taken.
        self._counters = bytearray([2] * (self._l2_mask + 1))
        self._btb_tag = [-1] * (self._btb_mask + 1)
        self._btb_target = [0] * (self._btb_mask + 1)
        self._history_mask = (1 << config.history_bits) - 1
        self.stats = BranchStats()

    def predict_conditional(self, pc: int, taken: bool) -> bool:
        """Predict + train one conditional branch; True if mispredicted."""
        stats = self.stats
        stats.conditional += 1
        l1_idx = (pc >> 2) & self._l1_mask
        history = self._history[l1_idx]
        l2_idx = (history ^ (pc >> 2)) & self._l2_mask
        counter = self._counters[l2_idx]
        predicted_taken = counter >= 2
        mispredicted = predicted_taken != taken
        if mispredicted:
            stats.conditional_mispredicts += 1
        if taken:
            if counter < 3:
                self._counters[l2_idx] = counter + 1
        elif counter > 0:
            self._counters[l2_idx] = counter - 1
        self._history[l1_idx] = \
            ((history << 1) | taken) & self._history_mask
        return mispredicted

    def predict_indirect(self, pc: int, target: int) -> bool:
        """Predict + train one indirect call/jump via the BTB."""
        stats = self.stats
        stats.indirect += 1
        idx = (pc >> 2) & self._btb_mask
        mispredicted = (self._btb_tag[idx] != pc or
                        self._btb_target[idx] != target)
        if mispredicted:
            stats.indirect_mispredicts += 1
            self._btb_tag[idx] = pc
            self._btb_target[idx] = target
        return mispredicted


def _pow2_mask(entries: int) -> int:
    """Mask for the largest power of two not exceeding ``entries``."""
    size = 1 << max(2, (entries.bit_length() - 1))
    if size * 2 <= entries:
        size *= 2
    return size - 1


def _control_masks(trace_arrays: dict[str, np.ndarray],
                   ) -> tuple[np.ndarray, np.ndarray]:
    """(conditional, indirect) masks; indirect wins when both are set."""
    kinds = trace_arrays["kind"]
    flags = trace_arrays["flags"]
    ind_mask = (((kinds == int(InstrKind.ICALL)) |
                 (kinds == int(InstrKind.BRANCH))) &
                ((flags & FLAG_INDIRECT) != 0))
    cond_mask = (kinds == int(InstrKind.BRANCH)) & \
                ((flags & FLAG_COND) != 0) & ~ind_mask
    return cond_mask, ind_mask


def simulate_branches_scalar(trace_arrays: dict[str, np.ndarray],
                             config: BranchPredictorConfig,
                             ) -> tuple[np.ndarray, BranchStats]:
    """Reference engine: one predictor call per control instruction."""
    n = len(trace_arrays["kind"])
    flags = trace_arrays["flags"]
    addrs = trace_arrays["addr"]
    pcs = trace_arrays["pc"]
    mispredicted = np.zeros(n, dtype=bool)
    predictor = BranchPredictor(config)

    cond_mask, ind_mask = _control_masks(trace_arrays)
    ctrl_idx = np.nonzero(cond_mask | ind_mask)[0]
    if len(ctrl_idx) == 0:
        return mispredicted, predictor.stats

    ctrl_pcs = pcs[ctrl_idx].tolist()
    ctrl_targets = addrs[ctrl_idx].tolist()
    ctrl_taken = ((flags[ctrl_idx] & FLAG_TAKEN) != 0).tolist()
    ctrl_indirect = (ind_mask[ctrl_idx]).tolist()

    predict_cond = predictor.predict_conditional
    predict_ind = predictor.predict_indirect
    results = [
        predict_ind(pc, target) if indirect else predict_cond(pc, taken)
        for pc, target, taken, indirect
        in zip(ctrl_pcs, ctrl_targets, ctrl_taken, ctrl_indirect)
    ]
    mispredicted[ctrl_idx] = results
    return mispredicted, predictor.stats


def _sort_key(values: np.ndarray, limit: int) -> np.ndarray:
    """Cast table indices so argsort takes NumPy's radix path."""
    dtype = np.uint16 if limit <= 65536 else np.int64
    return values.astype(dtype)


def _grouped_positions(sorted_keys: np.ndarray) -> np.ndarray:
    """Occurrence rank of each element within its (contiguous) group."""
    m = len(sorted_keys)
    head = np.empty(m, dtype=bool)
    head[0] = True
    np.not_equal(sorted_keys[1:], sorted_keys[:-1], out=head[1:])
    idx = np.arange(m, dtype=np.int32)
    starts = idx[head]
    counts = np.diff(np.append(starts, m))
    return idx - np.repeat(starts, counts)


def _vec_conditional(pcs: np.ndarray, taken: np.ndarray,
                     config: BranchPredictorConfig) -> np.ndarray:
    """Exact vectorized 2-level predictor; returns mispredict flags."""
    m = len(pcs)
    if m == 0:
        return np.zeros(0, dtype=bool)
    l1_mask = _pow2_mask(config.scaled_l1_entries)
    l2_mask = _pow2_mask(config.scaled_l2_entries)
    hist_mask = (1 << config.history_bits) - 1
    pcs2 = (pcs >> 2).astype(np.int64)
    l1_idx = pcs2 & l1_mask

    # History before each branch = bits of the previous accesses to the
    # same L1 entry: group by entry, then sum windowed shifted copies.
    o1 = np.argsort(_sort_key(l1_idx, l1_mask + 1), kind="stable")
    g_taken = taken[o1].astype(np.int32)
    pos = _grouped_positions(l1_idx[o1])
    history = np.zeros(m, dtype=np.int32)
    contrib = np.zeros(m, dtype=np.int32)
    for k in range(1, min(config.history_bits, int(pos.max())) + 1):
        np.left_shift(g_taken[:-k], k - 1, out=contrib[k:])
        contrib[:k] = 0
        contrib[pos < k] = 0
        history += contrib
    history &= hist_mask
    hist = np.empty(m, dtype=np.int64)
    hist[o1] = history

    # Counter before each branch: group by L2 entry (histories are
    # independent of the counters, so every index is known up front) and
    # run a segmented inclusive scan composing clamped-add functions
    # c -> clip(c + A, L, H); evaluate the prefix of the *previous*
    # element at the initial counter value 2 (weakly taken). Because the
    # counter domain is [0, 3], any |A| >= 4 already saturates, so the
    # whole scan state fits in int8 with A clamped to [-4, 4] each step.
    l2_idx = (hist ^ pcs2) & l2_mask
    o2 = np.argsort(_sort_key(l2_idx, l2_mask + 1), kind="stable")
    taken2 = taken[o2]
    pos2 = _grouped_positions(l2_idx[o2])
    add = np.where(taken2, 1, -1).astype(np.int8)
    lo = np.zeros(m, dtype=np.int8)
    hi = np.full(m, 3, dtype=np.int8)
    new_add = np.empty(m, dtype=np.int8)
    new_lo = np.empty(m, dtype=np.int8)
    new_hi = np.empty(m, dtype=np.int8)
    can = np.empty(m, dtype=bool)
    max_pos = int(pos2.max())
    off = 1
    while off <= max_pos:
        # predecessor at i-off is in the same group iff pos2 >= off
        np.greater_equal(pos2, off, out=can)
        np.add(add[:-off], add[off:], out=new_add[off:])
        np.minimum(new_add, 4, out=new_add)
        np.maximum(new_add, -4, out=new_add)
        np.add(lo[:-off], add[off:], out=new_lo[off:])
        np.maximum(new_lo[off:], lo[off:], out=new_lo[off:])
        np.minimum(new_lo[off:], hi[off:], out=new_lo[off:])
        np.add(hi[:-off], add[off:], out=new_hi[off:])
        np.maximum(new_hi[off:], lo[off:], out=new_hi[off:])
        np.minimum(new_hi[off:], hi[off:], out=new_hi[off:])
        np.copyto(add, new_add, where=can)
        np.copyto(lo, new_lo, where=can)
        np.copyto(hi, new_hi, where=can)
        off *= 2
    counter = np.full(m, 2, dtype=np.int8)
    inner = pos2 > 0
    prev = np.nonzero(inner)[0] - 1
    counter[inner] = np.clip(2 + add[prev], lo[prev], hi[prev])
    mis_sorted = (counter >= 2) != taken2
    mispredicted = np.empty(m, dtype=bool)
    mispredicted[o2] = mis_sorted
    return mispredicted


def _vec_indirect(pcs: np.ndarray, targets: np.ndarray,
                  config: BranchPredictorConfig) -> np.ndarray:
    """Exact vectorized BTB: after any access the entry holds that
    access's (pc, target), so a branch mispredicts iff it is the first
    access to its entry or differs from the immediately preceding one."""
    m = len(pcs)
    if m == 0:
        return np.zeros(0, dtype=bool)
    btb_mask = _pow2_mask(config.scaled_btb_entries)
    bidx = ((pcs >> 2).astype(np.int64)) & btb_mask
    o = np.argsort(_sort_key(bidx, btb_mask + 1), kind="stable")
    g = bidx[o]
    p = pcs[o]
    t = targets[o]
    mis_sorted = np.empty(m, dtype=bool)
    mis_sorted[0] = True
    mis_sorted[1:] = ((g[1:] != g[:-1]) | (p[1:] != p[:-1]) |
                      (t[1:] != t[:-1]))
    mispredicted = np.empty(m, dtype=bool)
    mispredicted[o] = mis_sorted
    return mispredicted


def simulate_branches_vectorized(trace_arrays: dict[str, np.ndarray],
                                 config: BranchPredictorConfig,
                                 ) -> tuple[np.ndarray, BranchStats]:
    """Batched engine; bit-identical outputs to the scalar reference."""
    n = len(trace_arrays["kind"])
    flags = trace_arrays["flags"]
    addrs = trace_arrays["addr"]
    pcs = trace_arrays["pc"]
    mispredicted = np.zeros(n, dtype=bool)
    stats = BranchStats()

    cond_mask, ind_mask = _control_masks(trace_arrays)
    cond_idx = np.nonzero(cond_mask)[0]
    ind_idx = np.nonzero(ind_mask)[0]

    if len(cond_idx):
        taken = (flags[cond_idx] & FLAG_TAKEN) != 0
        cond_mis = _vec_conditional(pcs[cond_idx], taken, config)
        mispredicted[cond_idx] = cond_mis
        stats.conditional = len(cond_idx)
        stats.conditional_mispredicts = int(np.count_nonzero(cond_mis))
    if len(ind_idx):
        ind_mis = _vec_indirect(pcs[ind_idx], addrs[ind_idx], config)
        mispredicted[ind_idx] = ind_mis
        stats.indirect = len(ind_idx)
        stats.indirect_mispredicts = int(np.count_nonzero(ind_mis))
    return mispredicted, stats


def simulate_branches(trace_arrays: dict[str, np.ndarray],
                      config: BranchPredictorConfig,
                      backend: str | None = None,
                      ) -> tuple[np.ndarray, BranchStats]:
    """Run every control instruction through a fresh predictor.

    Returns a per-instruction boolean mispredict array (aligned with the
    full trace) and the aggregate statistics. ``backend`` selects the
    engine exactly like :func:`repro.uarch.cache.simulate_cache_hierarchy`.
    """
    from .cache import _resolve_backend
    if _resolve_backend(backend) == "scalar":
        return simulate_branches_scalar(trace_arrays, config)
    return simulate_branches_vectorized(trace_arrays, config)
