"""Two-level branch predictor with 2-bit counters, plus a BTB.

Table I: "2-level 2-bit BP with 2048x18b L1, 16384x2b L2". The first-level
table holds per-address branch history registers; the second level holds
2-bit saturating counters indexed by the history XORed with the branch PC.
Scaling both tables is the Figure 7(b) sweep axis.

Indirect calls and jumps are predicted by a direct-mapped branch target
buffer; returns are assumed to be predicted perfectly by a return address
stack, and unconditional direct branches/calls are always correct. This
separation lets the analysis quantify the *indirect* share of the C
function call overhead the way Section IV-C.1 does.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import BranchPredictorConfig
from ..host.isa import FLAG_COND, FLAG_INDIRECT, FLAG_TAKEN, InstrKind


@dataclass
class BranchStats:
    """Outcome counters for one simulated trace."""

    conditional: int = 0
    conditional_mispredicts: int = 0
    indirect: int = 0
    indirect_mispredicts: int = 0

    @property
    def conditional_accuracy(self) -> float:
        if not self.conditional:
            return 1.0
        return 1.0 - self.conditional_mispredicts / self.conditional

    @property
    def indirect_accuracy(self) -> float:
        if not self.indirect:
            return 1.0
        return 1.0 - self.indirect_mispredicts / self.indirect

    @property
    def total_mispredicts(self) -> int:
        return self.conditional_mispredicts + self.indirect_mispredicts


class BranchPredictor:
    """Stateful predictor; feed it branches in program order."""

    def __init__(self, config: BranchPredictorConfig) -> None:
        self.config = config
        self._l1_mask = _pow2_mask(config.scaled_l1_entries)
        self._l2_mask = _pow2_mask(config.scaled_l2_entries)
        self._btb_mask = _pow2_mask(config.scaled_btb_entries)
        self._history = [0] * (self._l1_mask + 1)
        # 2-bit counters, initialized weakly taken.
        self._counters = bytearray([2] * (self._l2_mask + 1))
        self._btb_tag = [-1] * (self._btb_mask + 1)
        self._btb_target = [0] * (self._btb_mask + 1)
        self._history_mask = (1 << config.history_bits) - 1
        self.stats = BranchStats()

    def predict_conditional(self, pc: int, taken: bool) -> bool:
        """Predict + train one conditional branch; True if mispredicted."""
        stats = self.stats
        stats.conditional += 1
        l1_idx = (pc >> 2) & self._l1_mask
        history = self._history[l1_idx]
        l2_idx = (history ^ (pc >> 2)) & self._l2_mask
        counter = self._counters[l2_idx]
        predicted_taken = counter >= 2
        mispredicted = predicted_taken != taken
        if mispredicted:
            stats.conditional_mispredicts += 1
        if taken:
            if counter < 3:
                self._counters[l2_idx] = counter + 1
        elif counter > 0:
            self._counters[l2_idx] = counter - 1
        self._history[l1_idx] = \
            ((history << 1) | taken) & self._history_mask
        return mispredicted

    def predict_indirect(self, pc: int, target: int) -> bool:
        """Predict + train one indirect call/jump via the BTB."""
        stats = self.stats
        stats.indirect += 1
        idx = (pc >> 2) & self._btb_mask
        mispredicted = (self._btb_tag[idx] != pc or
                        self._btb_target[idx] != target)
        if mispredicted:
            stats.indirect_mispredicts += 1
            self._btb_tag[idx] = pc
            self._btb_target[idx] = target
        return mispredicted


def _pow2_mask(entries: int) -> int:
    """Mask for the largest power of two not exceeding ``entries``."""
    size = 1 << max(2, (entries.bit_length() - 1))
    if size * 2 <= entries:
        size *= 2
    return size - 1


def simulate_branches(trace_arrays: dict[str, np.ndarray],
                      config: BranchPredictorConfig,
                      ) -> tuple[np.ndarray, BranchStats]:
    """Run every control instruction through a fresh predictor.

    Returns a per-instruction boolean mispredict array (aligned with the
    full trace) and the aggregate statistics.
    """
    kinds = trace_arrays["kind"]
    flags = trace_arrays["flags"]
    addrs = trace_arrays["addr"]
    pcs = trace_arrays["pc"]
    n = len(kinds)
    mispredicted = np.zeros(n, dtype=bool)
    predictor = BranchPredictor(config)

    cond_mask = (kinds == int(InstrKind.BRANCH)) & \
                ((flags & FLAG_COND) != 0)
    ind_mask = (((kinds == int(InstrKind.ICALL)) |
                 (kinds == int(InstrKind.BRANCH))) &
                ((flags & FLAG_INDIRECT) != 0))

    ctrl_idx = np.nonzero(cond_mask | ind_mask)[0]
    if len(ctrl_idx) == 0:
        return mispredicted, predictor.stats

    ctrl_pcs = pcs[ctrl_idx].tolist()
    ctrl_targets = addrs[ctrl_idx].tolist()
    ctrl_taken = ((flags[ctrl_idx] & FLAG_TAKEN) != 0).tolist()
    ctrl_indirect = (ind_mask[ctrl_idx]).tolist()

    predict_cond = predictor.predict_conditional
    predict_ind = predictor.predict_indirect
    results = [
        predict_ind(pc, target) if indirect else predict_cond(pc, taken)
        for pc, target, taken, indirect
        in zip(ctrl_pcs, ctrl_targets, ctrl_taken, ctrl_indirect)
    ]
    mispredicted[ctrl_idx] = results
    return mispredicted, predictor.stats
