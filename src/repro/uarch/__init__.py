"""Zsim-analog microarchitecture models.

The package consumes :class:`~repro.host.trace.InstructionTrace` columns
and produces cycle counts, CPI, and cache/branch statistics. Following the
paper (Section IV-B.2), two core models are provided:

* :mod:`~repro.uarch.simple_core` — every instruction takes one cycle plus
  instruction- and data-cache miss penalties. Cycles map one-to-one to
  instructions, which is what makes per-category attribution exact.
* :mod:`~repro.uarch.ooo_core` — an approximate out-of-order model with
  issue width, ROB-window, dependence-chain, branch-mispredict, and
  memory-bandwidth constraints; used for the Figure 7-9 sweeps.
"""

from .cache import CacheHierarchy, CacheStats, simulate_cache_hierarchy
from .branch import BranchPredictor, BranchStats, simulate_branches
from .dram import DramModel
from .simple_core import simple_core_cycles, attribute_cycles
from .ooo_core import ooo_cycles
from .system import SimulatedSystem, SimResult, MemorySideState

__all__ = [
    "CacheHierarchy", "CacheStats", "simulate_cache_hierarchy",
    "BranchPredictor", "BranchStats", "simulate_branches",
    "DramModel", "simple_core_cycles", "attribute_cycles", "ooo_cycles",
    "SimulatedSystem", "SimResult", "MemorySideState",
]
