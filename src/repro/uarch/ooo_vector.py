"""Batched-NumPy engine for the approximate OOO core.

The scalar reference in :mod:`~repro.uarch.ooo_core` is a per-instruction
loop over five coupled timing constraints. This engine reproduces it
bit-for-bit by processing the trace in blocks and solving each block's
recurrences by **monotone fixed-point relaxation**: starting from a
lower bound (all finish times zero), a relaxation pass recomputes every
instruction's issue/finish time from the current estimates, and because
every constraint is monotone (raising any finish time can only raise
others) the estimates climb to the unique solution — the exact values
the scalar loop produces in order.

A naive Jacobi pass only extends resolved dependence chains by one hop,
so a pass is built from *exact closures*, one per constraint family,
each of which resolves arbitrarily long chains of its own kind in a
constant number of vector operations:

* **front-end restarts** (mispredicts): the recurrence
  ``front = max(front + delta, restart)`` unrolls to a running maximum
  of ``restart_j - prefix_j``, one ``maximum.accumulate``;
* **register dependences**: the static dep forest is decomposed into
  contiguous runs (dep distance one — the overwhelming majority in
  interpreter traces) plus a sparse set of non-contiguous edges
  bucketed into dependency levels once per block. Subtracting each
  node's exact root-to-node path latency turns the max-plus closure
  into a plain ancestor maximum, solved by one rank-offset running max
  per run plus one level-ordered gather chain for the sparse edges —
  a handful of vector ops regardless of chain length or nesting depth.
  Blocks with too many sparse edges (or offsets that could overflow
  the rank trick) fall back to pointer doubling over the same forest;
* **ROB / MSHR windows**: stride-``k`` recurrences
  ``f_i = max(o_i, f_{i-k} + lat_i)`` reshape into ``k`` independent
  columns where ``f_r = clat_r + cummax(o_u - clat_u)`` (a cumsum and a
  ``maximum.accumulate`` along the row axis).

All time arithmetic is int64 **ticks** (see
:data:`~repro.uarch.ooo_core.TICKS`), so reassociating sums and maxima
inside the scans is exact and the result matches the scalar engine to
the bit for any block size.

:func:`ooo_cycles_many_vector` additionally batches a whole parameter
sweep: configs sharing one memory-side state (a latency, bandwidth, or
issue-width axis over one trace) are stacked along a leading config
axis, so the trace — and all the trace-shaped bookkeeping above — is
walked once per *axis*, not once per *point*.

When a C compiler is present, single-config walks short-circuit to the
per-process compiled kernel in :mod:`~repro.uarch._ooo_kernel` — the
recurrence is a pure forward loop, so the kernel reproduces the scalar
engine bit for bit at memory speed, and batched walks thread it across
configs (it releases the GIL). ``REPRO_OOO_KERNEL=off`` or a missing
compiler falls back to the relaxation engine below; all three paths
return identical bits.
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor

import numpy as np

from ..errors import ReproError
from ..telemetry import TELEMETRY
from . import _ooo_kernel
from .ooo_core import (
    KIND_LATENCY_TICKS,
    MSHRS,
    TICKS,
    _LOAD,
    _STORE,
    _fetch_penalties,
    _load_latencies,
    front_interval_ticks,
    ticks_per_byte,
)

#: Block size for the fixed-point relaxation; override for testing with
#: the ``REPRO_OOO_CHUNK`` environment variable (results are identical
#: for every value, only speed changes).
CHUNK_ENV = "REPRO_OOO_CHUNK"
_DEFAULT_CHUNK = 16384

#: "No constraint" sentinel: far below any reachable time, far above
#: int64 underflow even after subtracting the largest prefix offsets.
_MIN = -(1 << 62)


def _chunk_size(chunk: int | None) -> int:
    if chunk is None:
        env = os.environ.get(CHUNK_ENV, "").strip()
        chunk = int(env) if env else _DEFAULT_CHUNK
    if chunk < 4:
        raise ReproError(f"OOO chunk size must be >= 4, got {chunk}")
    return chunk


def _stride_closure(f: np.ndarray, lat: np.ndarray, stride: int,
                    ) -> np.ndarray:
    """Exact closure of ``f_i = max(f_i, f_{i-stride} + lat_i)``.

    ``f``/``lat`` are ``(C, W)``; the recurrence runs along each of the
    ``stride`` interleaved columns independently.
    """
    c_axis, w = f.shape
    rows = -(-w // stride)
    padded = rows * stride
    q = np.full((c_axis, padded), _MIN, dtype=np.int64)
    q[:, :w] = f
    latp = np.zeros((c_axis, padded), dtype=np.int64)
    latp[:, :w] = lat
    qm = q.reshape(c_axis, rows, stride)
    clat = np.cumsum(latp.reshape(c_axis, rows, stride), axis=1)
    out = np.maximum.accumulate(qm - clat, axis=1) + clat
    return out.reshape(c_axis, padded)[:, :w]


class _BatchState:
    """Carried simulation state for one batch of configs (one group)."""

    def __init__(self, n_configs: int) -> None:
        self.front = np.zeros((n_configs, 1), dtype=np.int64)
        self.ring = np.zeros((n_configs, MSHRS), dtype=np.int64)
        self.miss_seen = 0
        self.last_finish = np.zeros((n_configs, 1), dtype=np.int64)


def ooo_cycles_many_vector(trace_arrays: dict[str, np.ndarray],
                           dlevel: np.ndarray, ilevel: np.ndarray,
                           mispredicted: np.ndarray, configs,
                           chunk: int | None = None) -> list[float]:
    """OOO cycles for every config in one batched walk of the trace.

    All configs must agree with the supplied memory-side arrays (same
    line size); configs whose ROB sizes differ are split into uniform
    sub-batches. Bit-identical to per-config
    :func:`~repro.uarch.ooo_core.ooo_cycles_scalar`.
    """
    n = len(trace_arrays["pc"])
    n_cfg = len(configs)
    if n_cfg == 0:
        return []
    if n == 0:
        return [0.0] * n_cfg

    line_size = configs[0].l1d.line_size
    for config in configs[1:]:
        if config.l1d.line_size != line_size:
            raise ReproError(
                "ooo_cycles_many_vector: all configs in one batch must "
                "share the memory-side geometry (line size differs)")

    # Compiled fast path: the recurrence is a pure forward walk, so
    # when a C compiler is present each config runs through the
    # per-process kernel (bit-identical to the scalar loop, GIL
    # released, configs threaded). ``REPRO_OOO_KERNEL=off`` or a
    # missing compiler falls back to the relaxation below.
    if _ooo_kernel.kernel_available():
        if TELEMETRY.enabled:
            TELEMETRY.metrics.counter(
                "sim.ooo_vector.kernel_calls").inc(n_cfg)
        prep = _ooo_kernel.prepare(trace_arrays, dlevel, ilevel,
                                   mispredicted)
        if n_cfg == 1:
            return [_ooo_kernel.run_prepared(prep, configs[0])]
        workers = min(n_cfg, os.cpu_count() or 1)
        with ThreadPoolExecutor(max_workers=workers) as pool:
            return list(pool.map(
                lambda config: _ooo_kernel.run_prepared(prep, config),
                configs))

    robs = [config.core.rob_entries for config in configs]
    if len(set(robs)) > 1:
        # Uniform ROB keeps the stride closure a single reshape; mixed
        # batches (rare: no sweep axis varies the ROB directly) recurse
        # into uniform sub-batches.
        out: list[float] = [0.0] * n_cfg
        by_rob: dict[int, list[int]] = {}
        for i, rob in enumerate(robs):
            by_rob.setdefault(rob, []).append(i)
        for positions in by_rob.values():
            cycles = ooo_cycles_many_vector(
                trace_arrays, dlevel, ilevel, mispredicted,
                [configs[i] for i in positions], chunk=chunk)
            for pos, value in zip(positions, cycles):
                out[pos] = value
        return out

    chunk = _chunk_size(chunk)
    rob = robs[0]

    # ------------------------------------------------------------------
    # Shared (config-independent) trace/state precomputation
    # ------------------------------------------------------------------
    kinds = np.asarray(trace_arrays["kind"], dtype=np.int64)
    dep = np.asarray(trace_arrays["dep"], dtype=np.int64)
    dl = np.asarray(dlevel, dtype=np.int64)
    il = np.asarray(ilevel, dtype=np.int64)
    misp = np.asarray(mispredicted, dtype=bool)
    idx = np.arange(n, dtype=np.int64)

    dep_valid = (dep > 0) & (dep <= idx)
    dep_src = np.where(dep_valid, idx - dep, idx)
    is_load = kinds == _LOAD
    is_store = kinds == _STORE
    data_miss = (is_load | is_store) & (dl == 3)
    ifetch_miss = il == 3
    # Off-chip lines transferred up to and *including* instruction i's
    # fetch and data fills — the scalar loop reads the bus envelope
    # after charging both.
    line_count = np.cumsum(ifetch_miss.astype(np.int64)
                           + data_miss.astype(np.int64))
    load_srv = is_load & (dl >= 0)
    has_bubble = il > 0

    # ------------------------------------------------------------------
    # Per-config parameters, stacked on the leading axis
    # ------------------------------------------------------------------
    front_int = np.array([front_interval_ticks(c) for c in configs],
                         dtype=np.int64)[:, None]
    penalty = np.array([c.branch.mispredict_penalty * TICKS
                        for c in configs], dtype=np.int64)[:, None]
    mem_lat = np.array([c.memory.latency * TICKS for c in configs],
                       dtype=np.int64)[:, None]
    tpb = np.array([ticks_per_byte(c) for c in configs],
                   dtype=np.int64)[:, None]
    load_lat = np.array([_load_latencies(c) for c in configs],
                        dtype=np.int64)
    fetch_pen = np.array([_fetch_penalties(c) for c in configs],
                         dtype=np.int64)

    fin = np.zeros((n_cfg, n), dtype=np.int64)
    state = _BatchState(n_cfg)
    metrics = TELEMETRY.metrics if TELEMETRY.enabled else None

    for a in range(0, n, chunk):
        b = min(a + chunk, n)
        _relax_block(a, b, fin, state, kinds=kinds, dep_valid=dep_valid,
                     dep_src=dep_src, dl=dl, il=il, misp=misp,
                     data_miss=data_miss, line_count=line_count,
                     load_srv=load_srv, has_bubble=has_bubble,
                     is_store=is_store, line_size=line_size, rob=rob,
                     front_int=front_int, penalty=penalty,
                     mem_lat=mem_lat, tpb=tpb, load_lat=load_lat,
                     fetch_pen=fetch_pen, metrics=metrics)

    total = np.maximum(state.last_finish[:, 0], state.front[:, 0])
    return [ticks / TICKS for ticks in total.tolist()]


def _relax_block(a: int, b: int, fin: np.ndarray, state: _BatchState, *,
                 kinds, dep_valid, dep_src, dl, il, misp, data_miss,
                 line_count, load_srv, has_bubble, is_store, line_size,
                 rob, front_int, penalty, mem_lat, tpb, load_lat,
                 fetch_pen, metrics) -> None:
    """Fixed-point solve of one block; writes final times into ``fin``."""
    w = b - a
    n_cfg = fin.shape[0]

    # Per-block, estimate-independent quantities ------------------------
    # (dense np.where/np.take throughout: boolean fancy indexing costs
    # ~6x as much as a full-width take on these block shapes)
    lat = np.where(load_srv[a:b],
                   np.take(load_lat, np.maximum(dl[a:b], 0), axis=1),
                   KIND_LATENCY_TICKS[kinds[a:b]])
    lat = np.where(is_store[a:b], TICKS, lat)
    bubble = np.take(fetch_pen, np.maximum(il[a:b], 0), axis=1)

    delta = front_int + bubble
    pd = np.cumsum(delta, axis=1)          # inclusive front prefix
    excl = pd - delta                      # exclusive front prefix
    ebc = excl + bubble                    # front-issue base less front
    misp_b = misp[a:b][None, :]

    # Static start-time candidates: deps and ROB edges that reach into
    # earlier (already final) blocks.
    dsrc_b = dep_src[a:b]
    dv_b = dep_valid[a:b]
    local_dep = dv_b & (dsrc_b >= a)
    ext_dep = dv_b & (dsrc_b < a)
    s_ext = np.full((n_cfg, w), _MIN, dtype=np.int64)
    if ext_dep.any():
        s_ext[:, ext_dep] = fin[:, dsrc_b[ext_dep]]
    rsrc = np.arange(a, b, dtype=np.int64) - rob
    rob_ext = (rsrc >= 0) & (rsrc < a)
    if rob_ext.any():
        s_ext[:, rob_ext] = np.maximum(s_ext[:, rob_ext],
                                       fin[:, rsrc[rob_ext]])
    rob_local = rsrc >= a
    rob_lsrc = rsrc[rob_local] - a
    ldep_src = np.where(local_dep, dsrc_b - a, 0)
    have_local_dep = bool(local_dep.any())

    # Data misses: bus-ready times and MSHR ring geometry.
    mloc = np.flatnonzero(data_miss[a:b])
    n_miss = len(mloc)
    if n_miss:
        bus = line_count[a:b][mloc] * line_size * tpb - mem_lat  # (C,K)
        off = state.miss_seen % MSHRS
        total_miss = off + n_miss
        mshr_rows = -(-total_miss // MSHRS)
        cols = np.arange(MSHRS)
        first_idx = np.where(cols >= off, cols, cols + MSHRS)
        seed_cols = cols[first_idx - off < n_miss]
        seed_rows = (seed_cols < off).astype(np.int64)
        row_lat = (np.arange(mshr_rows, dtype=np.int64)[None, :, None]
                   * mem_lat[:, :, None])

    # Dep-forest geometry (shared across configs and passes). The
    # forest is decomposed into *contiguous runs* (dep distance 1 —
    # the vast majority on interpreter traces) stitched together by
    # sparse non-contiguous edges grouped into dependency levels, so
    # every chain computation below is one prefix scan plus a handful
    # of small batched gathers instead of log-depth pointer doubling
    # over the whole block. Doubling survives as the fallback for
    # adversarial forests.
    loc_idx = np.arange(w, dtype=np.int64)
    parent = np.where(local_dep, dsrc_b - a, loc_idx)
    jumps = [parent]

    def _extend_jumps(depth=None):
        """Grow the pointer-doubling tables to ``depth`` (or to root)."""
        while depth is None or len(jumps) < depth:
            nxt = np.take(jumps[-1], jumps[-1])
            if np.array_equal(nxt, jumps[-1]):
                return
            jumps.append(nxt)

    dep_weight = None

    def dep_closure(f):
        """Exact max-plus closure by pointer doubling (fallback path)."""
        nonlocal dep_weight
        _extend_jumps()
        if dep_weight is None:
            dep_weight = np.where(local_dep, lat, 0)
        weight = dep_weight
        for jump in jumps:
            f = np.maximum(f, np.take(f, jump, axis=1) + weight)
            weight = weight + np.take(weight, jump, axis=1)
        return f

    contig = local_dep & (parent == loc_idx - 1)
    is_head = ~contig
    n_heads = int(is_head.sum())
    nc_pos = np.flatnonzero(local_dep & is_head)
    # The segment path needs one python pass over the non-contiguous
    # edges; ``seg_closure`` additionally isolates runs inside a single
    # ``maximum.accumulate`` by offsetting each run by its head rank
    # times ``_BREAK``, so the rank products must stay well inside
    # int64 and every input's span below ``_BREAK`` (checked per call).
    _BREAK = 1 << 50
    use_seg = nc_pos.size <= 4096
    seg_ok = use_seg and (n_heads + 1) * _BREAK < (1 << 61)

    nc_levels = []
    if use_seg:
        seg_head = np.maximum.accumulate(np.where(is_head, loc_idx, 0))
        if nc_pos.size:
            # Level of a non-contiguous head = 1 + level of its
            # source's run head (0 for true roots): all heads on one
            # level chain independently and batch into numpy ops.
            src_head = seg_head[parent[nc_pos]]
            lvl_of: dict[int, int] = {}
            buckets: list[tuple[list, list, list]] = []
            for h, src, sh in zip(nc_pos.tolist(),
                                  parent[nc_pos].tolist(),
                                  src_head.tolist()):
                lv = lvl_of.get(sh, 0)
                lvl_of[h] = lv + 1
                if lv == len(buckets):
                    buckets.append(([], [], []))
                buckets[lv][0].append(h)
                buckets[lv][1].append(src)
                buckets[lv][2].append(sh)
            nc_levels = [tuple(np.array(c, dtype=np.int64) for c in b3)
                         for b3 in buckets]

        # Dep-path latency P (root-exclusive, self-inclusive prefix of
        # ``lat`` along each dep path): prefix sums within runs, head
        # values chained through the non-contiguous edges level by
        # level — exact for any nesting depth, no sentinels involved.
        cs = np.cumsum(np.where(contig, lat, 0), axis=1)
        cs_head = np.take(cs, seg_head, axis=1)
        headP = np.zeros((n_cfg, w), dtype=np.int64)
        for h_arr, src_arr, sh_arr in nc_levels:
            headP[:, h_arr] = (headP[:, sh_arr] + cs[:, src_arr]
                               - cs[:, sh_arr] + lat[:, h_arr])
        path_lat = np.take(headP, seg_head, axis=1) + cs - cs_head
        del headP
    else:
        _extend_jumps()
        path_lat = np.where(local_dep, lat, 0)
        for jump in jumps:
            path_lat = path_lat + np.take(path_lat, jump, axis=1)

    if seg_ok:
        rank_big = np.cumsum(is_head) * _BREAK

    def seg_closure(g):
        """Max of ``g`` over each position's dep ancestors (and self).

        One rank-offset running maximum closes every contiguous run
        (a value leaking across a run boundary loses at least
        ``_BREAK - span`` and lands strictly below every true
        candidate), then the sparse head chains fold in level by
        level. Exact for any nesting depth; callers guarantee the
        span bound.
        """
        acc = g + rank_big
        np.maximum.accumulate(acc, axis=1, out=acc)
        acc -= rank_big
        if nc_levels:
            head_max = np.full((n_cfg, w), _MIN, dtype=np.int64)
            for h_arr, src_arr, sh_arr in nc_levels:
                head_max[:, h_arr] = np.maximum(acc[:, src_arr],
                                                head_max[:, sh_arr])
            np.maximum(acc, np.take(head_max, seg_head, axis=1),
                       out=acc)
        return acc

    def pass_closure(f):
        """Exact dep closure of the per-pass start+latency values.

        ``closure(f)_i = max_j (f_j + P_i - P_j)`` over ancestors
        ``j``, so subtracting P turns it into a plain ancestor max.
        """
        if not seg_ok:
            return dep_closure(f)
        gg = f - path_lat
        mn = int(gg.min())
        if int(gg.max()) - mn >= _BREAK:
            return dep_closure(f)
        gg -= mn
        out = seg_closure(gg)
        out += path_lat
        out += mn
        return out

    # Constant (estimate-independent) finish-time lower bounds, pushed
    # through the dep forest once per block:
    #
    # * ``c_const``: finishes forced by previous blocks (external dep /
    #   ROB sources) and by the bus envelope, plus the dep chains
    #   hanging off them;
    # * ``c_front``: the finish each instruction reaches if some dep
    #   ancestor issues straight off the front end — the *front base*
    #   (``max(carried front, in-block restarts)``) still has to be
    #   added, which is what the restart solver below does.
    #
    # Seeding the relaxation at these bounds (and solving restart
    # chains exactly inside each pass) keeps the pass count a small
    # constant instead of one pass per mispredict "generation".
    k_gain = ebc + lat - path_lat
    if seg_ok and int(k_gain.max()) - int(k_gain.min()) < _BREAK:
        c_front = path_lat + seg_closure(k_gain)
    else:
        c_front = dep_closure(ebc + lat)

    g0 = np.full((n_cfg, w), _MIN, dtype=np.int64)
    ext_any = ext_dep | rob_ext
    has_ext = bool(ext_any.any())
    if has_ext:
        g0[:, ext_any] = s_ext[:, ext_any] + lat[:, ext_any]
    if n_miss:
        g0[:, mloc] = np.maximum(g0[:, mloc], bus + lat[:, mloc])
    if not (has_ext or n_miss):
        c_const = g0
    else:
        # Seed values are absolute times; rebase by a conservative
        # floor of the real (non-sentinel) entries so the span check
        # only sees the real spread. Sentinels stay ~``_MIN`` and any
        # cross-run leakage lands below zero, which the seed's final
        # ``max(..., 0)`` washes out.
        gg0 = g0 - path_lat
        lo = -int(mem_lat.max()) - int(path_lat.max())
        if seg_ok and int(gg0.max()) - lo < _BREAK:
            gg0 -= lo
            c_const = seg_closure(gg0) + path_lat
            c_const += lo
        else:
            c_const = dep_closure(g0)

    # Restart-chain solver. On the subsequence of mispredicted
    # branches (positions ``p_0 < p_1 < ...``), the restart value
    # ``rf_m = fin_m + penalty - pd_m`` of branch ``m`` is reached
    # through some dep ancestor ``j`` that issued off the front end:
    #
    #   rf_m >= (excl_j + bubble_j + lat_j - P_j) + P_m
    #           + penalty - pd_m + max(front_base, R_j)
    #
    # where ``P`` is the dep-path latency from the forest root and
    # ``R_j`` the strongest restart issued before ``j``. On real traces
    # the binding anchor sits just *after* the previous mispredict (the
    # restart bumps the front above the dep chain), so ``R_j`` is the
    # previous branch's own restart and the whole subsystem is the
    # max-plus recurrence ``v_m = max(base_m, v_{m-1} + K_m)`` with
    #
    #   K_m = max{ k_j : j in ancestors(p_m), j > p_{m-1} }
    #         + P_m + penalty - pd_m,   k_j = (excl+bubble+lat-P)_j,
    #
    # solved *exactly* by one cumsum + running maximum. The
    # range-restricted ancestor maximum is a binary-lifting query over
    # the same ``jumps`` tables the dep closure uses (positions strictly
    # decrease along a dep path, so "ancestor above the previous
    # mispredict" is a monotone predicate). Anchors older than the
    # previous mispredict are covered by the all-ancestor bound
    # ``c_front`` (with the restart count at the forest root) and by the
    # estimate floor.
    misp_cols = np.flatnonzero(misp[a:b])
    n_misp = len(misp_cols)
    if n_misp:
        # Anchor gain k_j = (excl + bubble + lat - P)_j — the same
        # array that seeds ``c_front``.
        anchor_gain = k_gain

        # Per mispredict, the strongest anchor strictly above the
        # previous mispredicted position (the branch itself counts).
        thr = np.empty(n_misp, dtype=np.int64)
        thr[0] = -1
        thr[1:] = misp_cols[:-1]

        # Binary-lifting tables — lift[d][:, i] is the max anchor gain
        # over ``i`` and its next ``2**d - 1`` dep ancestors — built
        # only as deep as the widest query window needs (ancestor hops
        # never exceed the position distance to the threshold).
        max_win = int((misp_cols - thr).max())
        _extend_jumps(max(1, max_win.bit_length()))
        n_lift = min(len(jumps), max(1, max_win.bit_length()))
        lift = [anchor_gain]
        for jump in jumps[:n_lift - 1]:
            lift.append(np.maximum(lift[-1],
                                   np.take(lift[-1], jump, axis=1)))

        cur = misp_cols.copy()
        anchor_max = np.full((n_cfg, n_misp), _MIN, dtype=np.int64)
        for d in range(n_lift - 1, -1, -1):
            nxt = jumps[d][cur]
            take = nxt > thr
            if take.any():
                tc = cur[take]
                anchor_max[:, take] = np.maximum(anchor_max[:, take],
                                                 lift[d][:, tc])
                cur[take] = nxt[take]
        anchor_max = np.maximum(anchor_max, anchor_gain[:, cur])
        del lift

        if use_seg:
            head_root = loc_idx.copy()
            for h_arr, _src_arr, sh_arr in nc_levels:
                head_root[h_arr] = head_root[sh_arr]
            root_at_misp = head_root[seg_head[misp_cols]]
        else:
            _extend_jumps()
            root_at_misp = jumps[-1][misp_cols]
        misp_before_root = np.searchsorted(misp_cols, root_at_misp)
        pen_less_pd = penalty - pd[:, misp_cols]
        restart_root = c_front[:, misp_cols] + pen_less_pd
        chain_offset = anchor_max + path_lat[:, misp_cols] + pen_less_pd
        chain_sum = np.cumsum(chain_offset, axis=1)
        has_root_anchor = bool((misp_before_root > 0).any())

    def solve_restarts(est):
        """Lower-bound fixed point of the mispredict restart chain."""
        floor = est[:, misp_cols] + pen_less_pd
        base = np.maximum(floor, restart_root + state.front)
        v = None
        for _ in range(n_misp + 2):
            # Exact solution of v_m = max(base_m, v_{m-1} + K_m).
            running = (np.maximum.accumulate(base - chain_sum, axis=1)
                       + chain_sum)
            if not has_root_anchor:
                return running
            # Cross-chain anchors at the forest root: restarts issued
            # before the root raise the front the whole chain rides on.
            acc = np.maximum.accumulate(running, axis=1)
            at_root = np.where(
                misp_before_root > 0,
                acc[:, np.maximum(misp_before_root - 1, 0)], _MIN)
            v_new = np.maximum(
                running,
                restart_root + np.maximum(state.front, at_root))
            if v is not None and np.array_equal(v_new, v):
                return v
            v = v_new
            np.maximum(base, v, out=base)
        raise ReproError(
            "restart chain failed to converge")  # pragma: no cover

    # Fixed-point relaxation --------------------------------------------
    # The in-block ROB constraints start disabled: at realistic ROB
    # sizes they bind on a fraction of a percent of instructions, so
    # the common case converges without them and a single vectorized
    # check proves the solution already satisfies them (the relaxed
    # fixed point is then the true one). Only on a violation do they
    # switch on and the relaxation continue.
    est = np.maximum(c_const, c_front + state.front)
    np.maximum(est, 0, out=est)
    rob_active = False
    miss_starts = None
    passes = 0
    for _ in range(2 * (w + 2)):
        passes += 1
        # 1) Front end with mispredict restarts (solved on the
        #    mispredict subsequence, then scanned over the block).
        if n_misp:
            radj = np.full((n_cfg, w), _MIN, dtype=np.int64)
            radj[:, misp_cols] = solve_restarts(est)
            acc = np.maximum.accumulate(radj, axis=1)
            shifted = np.empty_like(acc)
            shifted[:, 0] = _MIN
            shifted[:, 1:] = acc[:, :-1]
            s = ebc + np.maximum(state.front, shifted)
        else:
            s = ebc + state.front
        # 2) Dep/ROB constraints: final (previous blocks) and estimated.
        s = np.maximum(s, s_ext)
        if have_local_dep:
            np.maximum(s, np.where(local_dep,
                                   np.take(est, ldep_src, axis=1),
                                   _MIN), out=s)
        if rob_active and rob_lsrc.size:
            s[:, rob_local] = np.maximum(s[:, rob_local],
                                         est[:, rob_lsrc])
        # 3) Bus envelope + MSHR window on the miss subsequence.
        if n_miss:
            sm = np.maximum(s[:, mloc], bus)
            padded = np.full((n_cfg, mshr_rows * MSHRS), _MIN,
                             dtype=np.int64)
            padded[:, off:off + n_miss] = sm
            grid = padded.reshape(n_cfg, mshr_rows, MSHRS)
            if seed_cols.size:
                grid[:, seed_rows, seed_cols] = np.maximum(
                    grid[:, seed_rows, seed_cols],
                    state.ring[:, seed_cols])
            closed = (np.maximum.accumulate(grid - row_lat, axis=1)
                      + row_lat)
            miss_starts = closed.reshape(
                n_cfg, mshr_rows * MSHRS)[:, off:off + n_miss]
            s[:, mloc] = miss_starts
        # 4) Dep-chain closure (segmented scans, doubling fallback).
        f = pass_closure(s + lat)
        # 5) ROB window closure (stride-rob chains inside the block).
        if rob_active and rob < w:
            f = _stride_closure(f, lat, rob)
        # Force ascent so the iteration climbs monotonically from the
        # seeded lower bound to the least fixed point.
        np.maximum(f, est, out=f)
        if np.array_equal(f, est):
            if rob_active or not rob_lsrc.size:
                break
            violated = (est[:, rob_local]
                        < est[:, rob_lsrc] + lat[:, rob_local])
            if not violated.any():
                break
            rob_active = True
        est = f
    else:
        raise ReproError("OOO relaxation failed to converge "
                         f"(block {a}:{b})")  # pragma: no cover

    if metrics is not None:
        metrics.counter("sim.ooo_vector.blocks").inc()
        metrics.counter("sim.ooo_vector.passes").inc(passes)

    # Commit the block: final times and carried state -------------------
    fin[:, a:b] = est
    state.last_finish = np.maximum(state.last_finish,
                                   est.max(axis=1, keepdims=True))
    radj = np.where(misp_b, est + penalty - pd, _MIN)
    state.front = pd[:, -1:] + np.maximum(
        state.front, radj.max(axis=1, keepdims=True))
    if n_miss:
        cols = np.arange(MSHRS)
        r_last = (off + n_miss - 1 - cols) // MSHRS
        p_last = r_last * MSHRS + cols
        live = (p_last >= off) & (r_last >= 0)
        state.ring[:, cols[live]] = (miss_starts[:, p_last[live] - off]
                                     + mem_lat)
        state.miss_seen += n_miss
