"""Exception hierarchy for the repro package.

All errors raised by this library derive from :class:`ReproError` so callers
can catch library failures without masking programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigError(ReproError):
    """A configuration value is invalid or inconsistent."""


class CompileError(ReproError):
    """MiniPy source could not be compiled to guest bytecode."""

    def __init__(self, message: str, lineno: int | None = None):
        if lineno is not None:
            message = f"line {lineno}: {message}"
        super().__init__(message)
        self.lineno = lineno


class GuestError(ReproError):
    """Base class for errors raised *by the guest program* at run time."""


class GuestTypeError(GuestError):
    """Guest-level type error (operand types do not support the operation)."""


class GuestNameError(GuestError):
    """Guest-level unresolved variable name."""


class GuestIndexError(GuestError):
    """Guest-level out-of-bounds subscript."""


class GuestKeyError(GuestError):
    """Guest-level missing dictionary key."""


class GuestValueError(GuestError):
    """Guest-level invalid value."""


class GuestZeroDivisionError(GuestError):
    """Guest-level division by zero."""


class GuestStopIteration(GuestError):
    """Internal signal used by guest iterators; never escapes the VM."""


class VMError(ReproError):
    """The virtual machine reached an inconsistent internal state."""


class AllocationError(ReproError):
    """The simulated address space could not satisfy an allocation."""


class TraceError(ReproError):
    """An instruction trace is malformed or incompatible with the consumer."""


class WorkloadError(ReproError):
    """A workload is unknown or failed validation."""


class ExperimentError(ReproError):
    """An experiment harness was invoked with invalid arguments."""
