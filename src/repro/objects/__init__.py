"""Guest object model shared by the modeled run-times.

Every MiniPy value is a boxed heap object with a simulated address and a
byte size, mirroring CPython's ``PyObject`` layout. The semantic payload
(``value``, ``items``, ...) is held in ordinary Python attributes; the
``addr`` field ties the object to the simulated address space so the
cache models see realistic traffic.
"""

from .model import (
    GuestObject, PyInt, PyFloat, PyBool, PyNone, PyStr, PyList, PyTuple,
    PyDict, PyRange, PySlice, PyFunc, PyBuiltin, PyClass, PyInstance,
    PyBoundMethod, PyIterator, NONE, TRUE, FALSE, raw_key, gc_children,
    guest_repr,
)

__all__ = [
    "GuestObject", "PyInt", "PyFloat", "PyBool", "PyNone", "PyStr",
    "PyList", "PyTuple", "PyDict", "PyRange", "PySlice", "PyFunc",
    "PyBuiltin", "PyClass", "PyInstance", "PyBoundMethod", "PyIterator",
    "NONE", "TRUE", "FALSE", "raw_key", "gc_children", "guest_repr",
]
