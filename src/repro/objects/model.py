"""Boxed guest objects.

Sizes follow CPython's 64-bit layouts to first order: a 16-byte header
(refcount + type pointer) plus the payload. Container payloads that
CPython stores out-of-line (list item buffers, dict tables) are modeled
as separate allocations so growth patterns create realistic traffic.
"""

from __future__ import annotations

from ..errors import GuestTypeError

HEADER_BYTES = 16


class GuestObject:
    """Base class of every MiniPy value."""

    __slots__ = ("addr", "refcount", "gc_age")
    type_name = "object"

    def __init__(self) -> None:
        self.addr = 0
        self.refcount = 1
        self.gc_age = 0

    def size_bytes(self) -> int:
        return HEADER_BYTES

    def is_truthy(self) -> bool:
        return True


class PyInt(GuestObject):
    __slots__ = ("value",)
    type_name = "int"

    def __init__(self, value: int) -> None:
        super().__init__()
        self.value = value

    def size_bytes(self) -> int:
        return HEADER_BYTES + 16

    def is_truthy(self) -> bool:
        return self.value != 0


class PyFloat(GuestObject):
    __slots__ = ("value",)
    type_name = "float"

    def __init__(self, value: float) -> None:
        super().__init__()
        self.value = value

    def size_bytes(self) -> int:
        return HEADER_BYTES + 8

    def is_truthy(self) -> bool:
        return self.value != 0.0


class PyBool(GuestObject):
    __slots__ = ("value",)
    type_name = "bool"

    def __init__(self, value: bool) -> None:
        super().__init__()
        self.value = value

    def size_bytes(self) -> int:
        return HEADER_BYTES + 8

    def is_truthy(self) -> bool:
        return self.value


class PyNone(GuestObject):
    __slots__ = ()
    type_name = "NoneType"

    def is_truthy(self) -> bool:
        return False


class PyStr(GuestObject):
    __slots__ = ("value",)
    type_name = "str"

    def __init__(self, value: str) -> None:
        super().__init__()
        self.value = value

    def size_bytes(self) -> int:
        # header + hash + length + character data
        return HEADER_BYTES + 16 + len(self.value)

    def is_truthy(self) -> bool:
        return bool(self.value)


class PyList(GuestObject):
    __slots__ = ("items", "buffer_addr", "capacity")
    type_name = "list"

    def __init__(self, items: list[GuestObject] | None = None) -> None:
        super().__init__()
        self.items = items if items is not None else []
        self.buffer_addr = 0
        self.capacity = max(len(self.items), 4)

    def size_bytes(self) -> int:
        return HEADER_BYTES + 32  # ob_item pointer, size, allocated

    def buffer_bytes(self) -> int:
        return self.capacity * 8

    def is_truthy(self) -> bool:
        return bool(self.items)


class PyTuple(GuestObject):
    __slots__ = ("items",)
    type_name = "tuple"

    def __init__(self, items: tuple[GuestObject, ...]) -> None:
        super().__init__()
        self.items = items

    def size_bytes(self) -> int:
        return HEADER_BYTES + 8 + 8 * len(self.items)

    def is_truthy(self) -> bool:
        return bool(self.items)


class PyDict(GuestObject):
    """Guest dict. Keys are stored by raw (unboxed) value.

    ``entries`` maps the raw key to a ``(key_object, value_object)`` pair
    so key iteration can return real guest objects.
    """

    __slots__ = ("entries", "table_addr", "table_slots")
    type_name = "dict"

    def __init__(self) -> None:
        super().__init__()
        self.entries: dict[object, tuple[GuestObject, GuestObject]] = {}
        self.table_addr = 0
        self.table_slots = 8

    def size_bytes(self) -> int:
        return HEADER_BYTES + 48

    def table_bytes(self) -> int:
        return self.table_slots * 24  # hash, key, value per slot

    def is_truthy(self) -> bool:
        return bool(self.entries)


class PyRange(GuestObject):
    __slots__ = ("start", "stop", "step")
    type_name = "range"

    def __init__(self, start: int, stop: int, step: int = 1) -> None:
        super().__init__()
        self.start = start
        self.stop = stop
        self.step = step

    def size_bytes(self) -> int:
        return HEADER_BYTES + 24

    def __len__(self) -> int:
        if self.step > 0:
            span = self.stop - self.start
        else:
            span = self.start - self.stop
        step = abs(self.step)
        return max(0, (span + step - 1) // step)

    def is_truthy(self) -> bool:
        return len(self) > 0


class PySlice(GuestObject):
    __slots__ = ("start", "stop")
    type_name = "slice"

    def __init__(self, start: GuestObject, stop: GuestObject) -> None:
        super().__init__()
        self.start = start
        self.stop = stop

    def size_bytes(self) -> int:
        return HEADER_BYTES + 24


class PyFunc(GuestObject):
    __slots__ = ("code",)
    type_name = "function"

    def __init__(self, code) -> None:
        super().__init__()
        self.code = code

    def size_bytes(self) -> int:
        return HEADER_BYTES + 48


class PyBuiltin(GuestObject):
    """A modeled C function exposed to the guest (len, range, pickle...).

    ``inline_ok`` marks core object-protocol helpers (``list.append``,
    ``len``...) that a tracing JIT inlines into compiled code; external C
    library functions (pickle, regex, math) can never be inlined, which
    is why C-call overhead survives under JIT (paper Section IV-C.2).
    """

    __slots__ = ("name", "handler", "inline_ok", "clib")
    type_name = "builtin_function_or_method"

    def __init__(self, name: str, handler, inline_ok: bool = False,
                 clib: bool = False) -> None:
        super().__init__()
        self.name = name
        self.handler = handler
        self.inline_ok = inline_ok
        #: True for external C library entry points (pickle, re, math...):
        #: time inside them is accounted as C library time.
        self.clib = clib

    def size_bytes(self) -> int:
        return HEADER_BYTES + 32


class PyClass(GuestObject):
    __slots__ = ("name", "methods")
    type_name = "type"

    def __init__(self, name: str, methods: dict[str, PyFunc]) -> None:
        super().__init__()
        self.name = name
        self.methods = methods

    def size_bytes(self) -> int:
        return HEADER_BYTES + 64


class PyInstance(GuestObject):
    __slots__ = ("cls", "attrs")

    def __init__(self, cls: PyClass) -> None:
        super().__init__()
        self.cls = cls
        self.attrs: dict[str, GuestObject] = {}

    @property
    def type_name(self) -> str:  # type: ignore[override]
        return self.cls.name

    def size_bytes(self) -> int:
        return HEADER_BYTES + 16  # instance dict pointer + class pointer

    def attrs_bytes(self) -> int:
        return 48 + 24 * max(8, len(self.attrs))


class PyBoundMethod(GuestObject):
    __slots__ = ("instance", "func")
    type_name = "method"

    def __init__(self, instance: PyInstance, func: PyFunc) -> None:
        super().__init__()
        self.instance = instance
        self.func = func

    def size_bytes(self) -> int:
        return HEADER_BYTES + 16


class PyIterator(GuestObject):
    """Iterator over a list/tuple/range/str/dict-keys snapshot."""

    __slots__ = ("kind", "source", "index")
    type_name = "iterator"

    def __init__(self, kind: str, source: object) -> None:
        super().__init__()
        self.kind = kind
        self.source = source
        self.index = 0

    def size_bytes(self) -> int:
        return HEADER_BYTES + 16


NONE = PyNone()
TRUE = PyBool(True)
FALSE = PyBool(False)


def raw_key(obj: GuestObject) -> object:
    """Convert a guest object to a hashable raw key for dict storage."""
    if isinstance(obj, (PyInt, PyFloat, PyStr)):
        return obj.value
    if isinstance(obj, PyBool):
        # Match Python semantics: True == 1 as a dict key.
        return int(obj.value)
    if isinstance(obj, PyNone):
        return None
    if isinstance(obj, PyTuple):
        return tuple(raw_key(item) for item in obj.items)
    if isinstance(obj, (PyInstance, PyClass, PyFunc, PyBuiltin)):
        return ("id", id(obj))
    raise GuestTypeError(f"unhashable type: {obj.type_name}")


def gc_children(obj: GuestObject):
    """Yield the guest objects directly referenced by ``obj``."""
    if isinstance(obj, PyList):
        yield from obj.items
    elif isinstance(obj, PyTuple):
        yield from obj.items
    elif isinstance(obj, PyDict):
        for key_obj, value_obj in obj.entries.values():
            yield key_obj
            yield value_obj
    elif isinstance(obj, PyInstance):
        yield obj.cls
        yield from obj.attrs.values()
    elif isinstance(obj, PyBoundMethod):
        yield obj.instance
        yield obj.func
    elif isinstance(obj, PyClass):
        yield from obj.methods.values()
    elif isinstance(obj, PySlice):
        yield obj.start
        yield obj.stop
    elif isinstance(obj, PyIterator):
        if isinstance(obj.source, GuestObject):
            yield obj.source


def guest_repr(obj: GuestObject) -> str:
    """Render a guest object for diagnostics and example output."""
    if isinstance(obj, (PyInt, PyFloat)):
        return repr(obj.value)
    if isinstance(obj, PyBool):
        return "True" if obj.value else "False"
    if isinstance(obj, PyNone):
        return "None"
    if isinstance(obj, PyStr):
        return repr(obj.value)
    if isinstance(obj, PyList):
        return "[" + ", ".join(guest_repr(i) for i in obj.items) + "]"
    if isinstance(obj, PyTuple):
        return "(" + ", ".join(guest_repr(i) for i in obj.items) + ")"
    if isinstance(obj, PyDict):
        parts = [f"{guest_repr(k)}: {guest_repr(v)}"
                 for k, v in obj.entries.values()]
        return "{" + ", ".join(parts) + "}"
    if isinstance(obj, PyRange):
        return f"range({obj.start}, {obj.stop}, {obj.step})"
    if isinstance(obj, PyInstance):
        return f"<{obj.cls.name} instance>"
    return f"<{obj.type_name}>"
