"""Nursery tuning advisor — the paper's headline practical result.

Section V-B: "nursery sizing should be done considering cache
performance, run-time configuration, and application characteristics."
This example sweeps the nursery size for one benchmark on the PyPy
model, prints the GC/cache trade-off, and recommends a size.

Run:  python examples/nursery_tuning.py [workload]
      (default workload: eparse; try fannkuch for the opposite answer)
"""

import sys

from repro.analysis.nursery import (
    QUICK_RATIOS,
    normalized,
    nursery_sweep,
    paper_equivalent_label,
)
from repro.analysis.report import render_table
from repro.config import scaled_config
from repro.experiments.runner import ExperimentRunner


def main():
    workload = sys.argv[1] if len(sys.argv) > 1 else "eparse"
    runner = ExperimentRunner(scale=2)
    config = scaled_config(5)  # proportionally scaled Table I machine
    print(f"sweeping nursery sizes for {workload!r} "
          f"(PyPy model w/ JIT, scaled machine, LLC '2MB-equivalent')\n")
    points = nursery_sweep(runner, workload, jit=True,
                           ratios=QUICK_RATIOS, config=config)
    norm = normalized(points)
    rows = []
    for point, value in zip(points, norm):
        rows.append([
            point.label,
            f"{value:.3f}",
            f"{point.llc_miss_rate:.1%}",
            f"{point.gc_fraction:.1%}",
            point.minor_gcs,
        ])
    print(render_table(
        ["nursery", "normalized time", "LLC miss rate", "GC share",
         "minor GCs"], rows))
    best_index = min(range(len(norm)), key=norm.__getitem__)
    best = points[best_index]
    print(f"\nrecommended nursery for {workload!r}: {best.label} "
          f"(paper-equivalent units)")
    static = norm[1] if len(norm) > 1 else 1.0  # half-LLC baseline
    print(f"improvement over static half-cache sizing: "
          f"{(1 - norm[best_index] / static):.1%}")


if __name__ == "__main__":
    main()
