"""Interpreter anatomy: follow one program through the whole pipeline.

Shows each layer of the reproduction working on a single benchmark:
compilation to MiniPy bytecode, categorized host-instruction emission,
Pin-style per-PC statistics with origin resolution, and both core
timing models across two cache configurations.

Run:  python examples/interpreter_anatomy.py
"""

from repro import compile_source, disassemble, run_cpython
from repro.analysis.report import render_table
from repro.categories import OverheadCategory
from repro.config import skylake_config
from repro.pintool import StatsCollector, compute_breakdown
from repro.uarch import SimulatedSystem
from repro.workloads import get_workload

WORKLOAD = "deltablue"


def main():
    spec = get_workload(WORKLOAD)
    print(f"workload: {spec.name} — {spec.description}\n")
    source = spec.source(1)
    program = compile_source(source, spec.name)

    # 1. Guest bytecode (first lines of one method).
    method = program.classes["EqualityConstraint"].methods["execute"]
    print("compiled guest bytecode (EqualityConstraint.execute):")
    print("\n".join(disassemble(method).splitlines()[:12]))
    print("  ...\n")

    # 2. Execute on the CPython model.
    vm, machine = run_cpython(program)
    print(f"guest output: {vm.output}")
    print(f"{vm.stats.bytecodes} guest bytecodes -> "
          f"{len(machine.trace)} host instructions "
          f"({len(machine.trace) / vm.stats.bytecodes:.1f} per bytecode)\n")

    # 3. Pin-style statistics: hottest static instruction sites.
    collector = StatsCollector()
    collector.collect(machine.trace)
    pc_to_site = {pc: name for name, pc in machine.site_table.items()}
    hottest = sorted(collector.stats.values(), key=lambda s: -s.count)[:6]
    rows = []
    for entry in hottest:
        site = pc_to_site.get(entry.pc - entry.pc % 128, "")
        rows.append([hex(entry.pc), entry.count,
                     site or "(interior pc)"])
    print(render_table(["pc", "count", "site"], rows,
                       title="hottest static instructions (Pin export)"))

    # 4. Breakdown with origin-resolved categories.
    breakdown = compute_breakdown(machine.trace, machine,
                                  runtime="cpython", workload=spec.name)
    print("\nexecution-time breakdown (simple core, Table II):")
    for label, share in breakdown.top_categories(8):
        print(f"    {label:<24s} {share:6.1%}")
    print(f"    {'-- total overhead':<24s} "
          f"{breakdown.overhead_share:6.1%}")

    # 5. Timing under two cache configurations.
    print("\ncache sensitivity (OOO core):")
    for name, config in (("Table I (2MB LLC)", skylake_config()),
                         ("256kB LLC", skylake_config()
                          .with_llc_size(256 * 1024))):
        result = SimulatedSystem(config).run(machine.trace, core="ooo")
        print(f"    {name:<20s} CPI {result.cpi:.3f}  "
              f"LLC miss rate {result.llc_miss_rate:.1%}")


if __name__ == "__main__":
    main()
