"""Quickstart: where do a Python program's cycles actually go?

Compiles a small MiniPy program, runs it on the CPython-model
interpreter and on the PyPy model with JIT, and prints the Table II
overhead breakdown for each — the paper's Figure 4 methodology applied
to your own code.

Run:  python examples/quickstart.py
"""

from repro import (
    OverheadCategory,
    compile_source,
    compute_breakdown,
    label_of,
    run_cpython,
    run_pypy,
)
from repro.config import pypy_runtime
from repro.uarch import SimulatedSystem

SOURCE = """
def score(words):
    table = {}
    for w in words:
        table[w] = table.get(w, 0) + len(w)
    best = ""
    best_score = -1
    for w in table.keys():
        if table[w] > best_score:
            best_score = table[w]
            best = w
    return best

words = []
for i in range(300):
    words.append("word" + str(i % 7))
print(score(words))
"""


def report(name, vm, machine):
    breakdown = compute_breakdown(machine.trace, machine, runtime=name)
    system = SimulatedSystem()
    timing = system.run(machine.trace, core="ooo")
    print(f"--- {name} ---")
    print(f"guest output:        {vm.output}")
    print(f"guest bytecodes:     {vm.stats.bytecodes}")
    print(f"host instructions:   {len(machine.trace)}")
    print(f"OOO cycles:          {timing.cycles:.0f} (CPI {timing.cpi:.2f})")
    print(f"identified overhead: {breakdown.overhead_share:.1%}")
    print("top categories:")
    for label, share in breakdown.top_categories(6):
        print(f"    {label:<24s} {share:6.1%}")
    print()
    return timing.cycles


def main():
    program = compile_source(SOURCE, "quickstart")
    vm, machine = run_cpython(program)
    cpython_cycles = report("CPython model", vm, machine)

    program = compile_source(SOURCE, "quickstart")
    vm, machine = run_pypy(program, pypy_runtime(jit=True))
    pypy_cycles = report("PyPy model (JIT)", vm, machine)

    print(f"JIT speedup on this program: "
          f"{cpython_cycles / pypy_cycles:.1f}x")
    print(f"compiled traces: {vm.stats.traces_compiled}, "
          f"deopts: {vm.stats.deopts}")


if __name__ == "__main__":
    main()
