"""Regenerate any of the paper's tables and figures from the command line.

Usage:
    python examples/regenerate_figures.py                # list targets
    python examples/regenerate_figures.py fig10          # quick grid
    python examples/regenerate_figures.py fig4 --full    # full grid
    python examples/regenerate_figures.py all            # everything quick
"""

import sys
import time

from repro.experiments.figures import ALL_FIGURES


def run_one(name: str, quick: bool) -> None:
    func = ALL_FIGURES[name]
    start = time.time()
    if name.startswith("table"):
        result = func()
    else:
        result = func(quick=quick)
    elapsed = time.time() - start
    print(result)
    print(f"[{name} regenerated in {elapsed:.1f}s]\n")


def main() -> int:
    args = [a for a in sys.argv[1:] if not a.startswith("--")]
    quick = "--full" not in sys.argv
    if not args:
        print("available targets:")
        for name, func in ALL_FIGURES.items():
            doc = (func.__doc__ or "").strip().splitlines()[0]
            print(f"  {name:<8s} {doc}")
        print("\nusage: python examples/regenerate_figures.py "
              "<target>|all [--full]")
        return 0
    targets = list(ALL_FIGURES) if args == ["all"] else args
    unknown = [t for t in targets if t not in ALL_FIGURES]
    if unknown:
        print(f"unknown targets: {unknown}")
        return 1
    for name in targets:
        run_one(name, quick)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
